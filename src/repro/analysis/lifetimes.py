"""New-file lifetimes (§6.3): figures 6 and 7.

Files created during the trace are matched to their deaths by the paper's
three deletion sources: (1) truncation-on-open of an existing file
(overwrite), (2) an explicit delete-disposition control operation, and
(3) the temporary-file attribute / delete-on-close option.  Lifetimes are
create-to-death; the close-to-overwrite and close-to-delete gaps the
paper quotes are computed too, as is the size-versus-lifetime sample
behind figure 7's no-correlation finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.common.clock import TICKS_PER_SECOND
from repro.stats.descriptive import cdf_points

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.sessions import Instance
    from repro.analysis.warehouse import TraceWarehouse


@dataclass
class LifetimeAnalysis:
    """The §6.3 measurements."""

    # Ticks from creation to death, by deletion method.
    overwrite_lifetimes: np.ndarray = field(
        default_factory=lambda: np.array([]))
    delete_lifetimes: np.ndarray = field(default_factory=lambda: np.array([]))
    temporary_lifetimes: np.ndarray = field(
        default_factory=lambda: np.array([]))
    # Gap between the creating session's close and the killing action.
    close_to_overwrite_gaps: np.ndarray = field(
        default_factory=lambda: np.array([]))
    close_to_delete_gaps: np.ndarray = field(
        default_factory=lambda: np.array([]))
    # Size of the file when it died (figure 7's x axis).
    death_sizes: np.ndarray = field(default_factory=lambda: np.array([]))
    death_lifetimes: np.ndarray = field(default_factory=lambda: np.array([]))
    # Same-process attribution (§6.3's 94% / 36%).
    overwrite_same_process: int = 0
    overwrite_total_matched: int = 0
    delete_same_process: int = 0
    delete_total_matched: int = 0
    # Files opened between creation and explicit deletion (§6.3's 18%).
    delete_with_intervening_opens: int = 0
    n_created: int = 0

    # ------------------------------------------------------------------ #

    @property
    def n_deleted(self) -> int:
        return (self.overwrite_lifetimes.size + self.delete_lifetimes.size
                + self.temporary_lifetimes.size)

    def method_shares(self) -> dict[str, float]:
        """Deletion-source split (§6.3: 37% / 62% / 1%)."""
        total = max(1, self.n_deleted)
        return {
            "overwrite": 100.0 * self.overwrite_lifetimes.size / total,
            "explicit": 100.0 * self.delete_lifetimes.size / total,
            "temporary": 100.0 * self.temporary_lifetimes.size / total,
        }

    def all_lifetimes(self) -> np.ndarray:
        return np.concatenate([self.overwrite_lifetimes,
                               self.delete_lifetimes,
                               self.temporary_lifetimes])

    def fraction_deleted_within(self, seconds: float,
                                method: Optional[str] = None) -> float:
        """Fraction of deleted new files dying within ``seconds``."""
        if method == "overwrite":
            arr = self.overwrite_lifetimes
        elif method == "explicit":
            arr = self.delete_lifetimes
        elif method == "temporary":
            arr = self.temporary_lifetimes
        else:
            arr = self.all_lifetimes()
        if arr.size == 0:
            return float("nan")
        return float(np.mean(arr <= seconds * TICKS_PER_SECOND))

    def lifetime_cdf(self, method: str) -> tuple[np.ndarray, np.ndarray]:
        """Figure 6: CDF of new-file lifetime for one deletion method."""
        arr = {"overwrite": self.overwrite_lifetimes,
               "explicit": self.delete_lifetimes,
               "temporary": self.temporary_lifetimes}[method]
        return cdf_points(arr / TICKS_PER_SECOND)

    def size_lifetime_sample(self) -> tuple[np.ndarray, np.ndarray]:
        """Figure 7: (size at death, lifetime seconds) scatter sample."""
        return self.death_sizes, self.death_lifetimes / TICKS_PER_SECOND

    def could_have_used_temporary_pct(self,
                                      write_behind_seconds: float = 1.5
                                      ) -> float:
        """§6.3's "at least 25%-35% of all the deleted new files could
        have benefited" from the temporary attribute.

        A deleted new file benefited if its data actually reached the
        disk before the deletion — i.e. it outlived the write-behind
        delay, so the lazy writer's traffic was wasted.  Files that died
        inside the delay were already saved by deletion racing the
        writer; the temporary attribute would have changed nothing.
        """
        threshold = write_behind_seconds * TICKS_PER_SECOND
        wasted = int((self.overwrite_lifetimes > threshold).sum()
                     + (self.delete_lifetimes > threshold).sum())
        total = self.n_deleted
        if total == 0:
            return float("nan")
        return 100.0 * wasted / total

    def size_lifetime_correlation(self) -> float:
        """Rank correlation between size and lifetime (§6.3: none)."""
        if self.death_sizes.size < 3:
            return float("nan")
        from scipy import stats as sstats
        rho, _p = sstats.spearmanr(self.death_sizes, self.death_lifetimes)
        return float(rho)


def _sessions_by_path(instances: list["Instance"]
                      ) -> dict[tuple[int, str, str], list["Instance"]]:
    by_path: dict[tuple[int, str, str], list["Instance"]] = {}
    for inst in instances:
        if inst.open_failed or not inst.path:
            continue
        key = (inst.machine_idx, inst.volume_label, inst.path.lower())
        by_path.setdefault(key, []).append(inst)
    for sessions in by_path.values():
        sessions.sort(key=lambda s: s.open_t)
    return by_path


@dataclass(frozen=True)
class Death:
    """One matched file death (§6.3)."""

    method: str           # 'overwrite' | 'explicit' | 'temporary'
    lifetime: int         # ticks, creation to death
    size: int             # file size at death (figure 7's x axis)
    close_gap: int        # close-to-death gap, or -1 for temporary files
    same_process: bool    # killer pid == creator pid
    intervening_opens: int


def death_events(instances: list["Instance"]
                 ) -> tuple[int, list[Death]]:
    """Match created files to their deaths; ``(n_created, deaths)``.

    The single source of truth for the §6.3 death-matching walk, shared
    by :func:`analyze_lifetimes` (whole warehouse) and the streaming fold
    (:mod:`repro.analysis.streaming`, one machine at a time — the key is
    machine-scoped, so partitioning by machine changes nothing).
    """
    n_created = 0
    deaths: list[Death] = []
    by_path = _sessions_by_path(instances)
    for _key, sessions in by_path.items():
        for idx, inst in enumerate(sessions):
            if not inst.was_created:
                continue
            n_created += 1
            created_t = inst.open_t
            closed_t = inst.session_end_t
            last_size = inst.file_size_max

            # Temporary files die at their creating session's cleanup.
            if inst.temporary and inst.explicit_delete_t < 0:
                lifetime = max(0, closed_t - created_t)
                deaths.append(Death(
                    method="temporary", lifetime=lifetime,
                    size=last_size, close_gap=-1, same_process=True,
                    intervening_opens=0))
                continue

            # Walk forward for the first killing event.
            death: Optional[tuple[str, int, "Instance"]] = None
            intervening_opens = 0
            if inst.explicit_delete_t >= 0:
                death = ("explicit", inst.explicit_delete_t, inst)
            else:
                for later in sessions[idx + 1:]:
                    if later.was_overwrite:
                        death = ("overwrite", later.open_t, later)
                        break
                    if later.explicit_delete_t >= 0:
                        death = ("explicit", later.explicit_delete_t, later)
                        break
                    intervening_opens += 1
                    if later.file_size_max > 0:
                        last_size = later.file_size_max
            if death is None:
                continue
            method, death_t, killer = death
            deaths.append(Death(
                method=method, lifetime=max(0, death_t - created_t),
                size=last_size, close_gap=max(0, death_t - closed_t),
                same_process=killer.pid == inst.pid,
                intervening_opens=intervening_opens))
    return n_created, deaths


def analyze_lifetimes(wh: "TraceWarehouse") -> LifetimeAnalysis:
    """Match created files to their deaths and measure lifetimes."""
    result = LifetimeAnalysis()
    overwrite_lt: list[int] = []
    delete_lt: list[int] = []
    temp_lt: list[int] = []
    ow_gaps: list[int] = []
    del_gaps: list[int] = []
    sizes: list[float] = []
    size_lts: list[int] = []

    result.n_created, deaths = death_events(wh.instances)
    for d in deaths:
        sizes.append(float(d.size))
        size_lts.append(d.lifetime)
        if d.method == "temporary":
            temp_lt.append(d.lifetime)
        elif d.method == "overwrite":
            overwrite_lt.append(d.lifetime)
            ow_gaps.append(d.close_gap)
            result.overwrite_total_matched += 1
            if d.same_process:
                result.overwrite_same_process += 1
        else:
            delete_lt.append(d.lifetime)
            del_gaps.append(d.close_gap)
            result.delete_total_matched += 1
            if d.same_process:
                result.delete_same_process += 1
            if d.intervening_opens > 0:
                result.delete_with_intervening_opens += 1

    result.overwrite_lifetimes = np.asarray(overwrite_lt, dtype=float)
    result.delete_lifetimes = np.asarray(delete_lt, dtype=float)
    result.temporary_lifetimes = np.asarray(temp_lt, dtype=float)
    result.close_to_overwrite_gaps = np.asarray(ow_gaps, dtype=float)
    result.close_to_delete_gaps = np.asarray(del_gaps, dtype=float)
    result.death_sizes = np.asarray(sizes, dtype=float)
    result.death_lifetimes = np.asarray(size_lts, dtype=float)
    return result
