"""Open/close characteristics (§8.1): figures 11 and 12.

Open-request interarrival (split by session purpose), session lifetimes
(open to cleanup) by usage type, file reuse rates, the cleanup-to-close
gap of the two-stage close, error rates and the read/write follow-up
spacing of §8.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.common.clock import TICKS_PER_MILLISECOND, TICKS_PER_SECOND
from repro.common.status import NtStatus
from repro.nt.tracing.records import TraceEventKind
from repro.stats.descriptive import cdf_points

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.warehouse import TraceWarehouse


@dataclass
class OpenCloseAnalysis:
    """The §8.1 / §8.2 measurements."""

    # Open interarrival times (ticks) by purpose, concatenated per machine.
    interarrival_all: np.ndarray = field(default_factory=lambda: np.array([]))
    interarrival_data: np.ndarray = field(default_factory=lambda: np.array([]))
    interarrival_control: np.ndarray = field(
        default_factory=lambda: np.array([]))
    # Session lifetimes (ticks) by population.
    session_all: np.ndarray = field(default_factory=lambda: np.array([]))
    session_data: np.ndarray = field(default_factory=lambda: np.array([]))
    session_control: np.ndarray = field(default_factory=lambda: np.array([]))
    session_by_usage: dict[str, np.ndarray] = field(default_factory=dict)
    # Cleanup-to-close gaps (ticks).
    close_gap_clean: np.ndarray = field(default_factory=lambda: np.array([]))
    close_gap_written: np.ndarray = field(
        default_factory=lambda: np.array([]))
    # Open sessions per purpose (§8.3's 74% control share).
    n_data_opens: int = 0
    n_control_opens: int = 0
    # Reuse (§8.1).
    read_only_reopened_pct: float = float("nan")
    write_only_rewritten_pct: float = float("nan")
    write_then_read_pct: float = float("nan")
    read_write_reopened_pct: float = float("nan")
    # Errors (§8.4).
    open_failure_pct: float = float("nan")
    failure_not_found_pct: float = float("nan")
    failure_collision_pct: float = float("nan")
    control_failure_pct: float = float("nan")
    read_failure_pct: float = float("nan")
    write_failure_pct: float = float("nan")
    # Data-op spacing (§8.2).
    read_followup_gaps: np.ndarray = field(
        default_factory=lambda: np.array([]))
    write_followup_gaps: np.ndarray = field(
        default_factory=lambda: np.array([]))
    # §8.1: fraction of 1-second intervals of the session that carry any
    # open requests at all (the paper saw at most 24% — extreme
    # burstiness at the second scale).
    active_open_interval_pct: float = float("nan")

    # ------------------------------------------------------------------ #

    @property
    def control_open_share_pct(self) -> float:
        total = self.n_data_opens + self.n_control_opens
        return 100.0 * self.n_control_opens / total if total else float("nan")

    def fraction_sessions_shorter_than(self, millis: float,
                                       population: str = "all") -> float:
        arr = {"all": self.session_all, "data": self.session_data,
               "control": self.session_control}[population]
        if arr.size == 0:
            return float("nan")
        return float(np.mean(arr <= millis * TICKS_PER_MILLISECOND))

    def interarrival_cdf(self, purpose: str = "all"
                         ) -> tuple[np.ndarray, np.ndarray]:
        """Figure 11 data (x in milliseconds)."""
        arr = {"all": self.interarrival_all, "data": self.interarrival_data,
               "control": self.interarrival_control}[purpose]
        return cdf_points(arr / TICKS_PER_MILLISECOND)

    def session_cdf(self, population: str = "all"
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Figure 12 data (x in milliseconds)."""
        arr = {"all": self.session_all, "data": self.session_data,
               "control": self.session_control}[population]
        return cdf_points(arr / TICKS_PER_MILLISECOND)


def _interarrivals(times_by_machine: dict[int, list[int]]) -> np.ndarray:
    gaps: list[np.ndarray] = []
    for times in times_by_machine.values():
        if len(times) < 2:
            continue
        arr = np.sort(np.asarray(times, dtype=float))
        gaps.append(np.diff(arr))
    if not gaps:
        return np.array([])
    return np.concatenate(gaps)


def analyze_opens(wh: "TraceWarehouse") -> OpenCloseAnalysis:
    """Compute §8's open/close statistics from the instance table."""
    result = OpenCloseAnalysis()
    instances = wh.instances

    all_times: dict[int, list[int]] = {}
    data_times: dict[int, list[int]] = {}
    control_times: dict[int, list[int]] = {}
    session_all: list[int] = []
    session_data: list[int] = []
    session_control: list[int] = []
    by_usage: dict[str, list[int]] = {"read-only": [], "write-only": [],
                                      "read-write": []}
    gap_clean: list[int] = []
    gap_written: list[int] = []
    n_failures = 0
    n_not_found = 0
    n_collision = 0
    read_gaps: list[np.ndarray] = []
    write_gaps: list[np.ndarray] = []
    # Reuse tracking: per path, the set of usages of its sessions.
    usage_by_path: dict[tuple[int, str, str], list[str]] = {}

    for inst in instances:
        all_times.setdefault(inst.machine_idx, []).append(inst.open_t)
        if inst.open_failed:
            n_failures += 1
            if inst.open_status in (NtStatus.OBJECT_NAME_NOT_FOUND,
                                    NtStatus.OBJECT_PATH_NOT_FOUND):
                n_not_found += 1
            elif inst.open_status == NtStatus.OBJECT_NAME_COLLISION:
                n_collision += 1
            continue
        duration = inst.session_duration
        session_all.append(duration)
        if inst.has_data:
            result.n_data_opens += 1
            data_times.setdefault(inst.machine_idx, []).append(inst.open_t)
            session_data.append(duration)
            if inst.usage in by_usage:
                by_usage[inst.usage].append(duration)
            key = (inst.machine_idx, inst.volume_label, inst.path.lower())
            usage_by_path.setdefault(key, []).append(inst.usage)
        else:
            result.n_control_opens += 1
            control_times.setdefault(inst.machine_idx, []).append(inst.open_t)
            session_control.append(duration)
        gap = inst.close_gap
        if gap >= 0:
            if inst.n_writes > 0:
                gap_written.append(gap)
            else:
                gap_clean.append(gap)
        # §8.2 follow-up spacing within the session.
        rt = np.asarray([op.t for op in inst.ops if op.is_read], dtype=float)
        wt = np.asarray([op.t for op in inst.ops if not op.is_read],
                        dtype=float)
        if rt.size >= 2:
            read_gaps.append(np.diff(rt))
        if wt.size >= 2:
            write_gaps.append(np.diff(wt))

    # Active 1-second intervals per machine (§8.1).
    active_fracs = []
    for times in all_times.values():
        if len(times) < 2:
            continue
        arr = np.asarray(times, dtype=np.int64)
        span = arr.max() - arr.min()
        n_bins = max(1, int(span // TICKS_PER_SECOND) + 1)
        occupied = np.unique((arr - arr.min()) // TICKS_PER_SECOND).size
        active_fracs.append(occupied / n_bins)
    if active_fracs:
        result.active_open_interval_pct = 100.0 * float(
            np.mean(active_fracs))

    result.interarrival_all = _interarrivals(all_times)
    result.interarrival_data = _interarrivals(data_times)
    result.interarrival_control = _interarrivals(control_times)
    result.session_all = np.asarray(session_all, dtype=float)
    result.session_data = np.asarray(session_data, dtype=float)
    result.session_control = np.asarray(session_control, dtype=float)
    result.session_by_usage = {u: np.asarray(v, dtype=float)
                               for u, v in by_usage.items()}
    result.close_gap_clean = np.asarray(gap_clean, dtype=float)
    result.close_gap_written = np.asarray(gap_written, dtype=float)
    result.read_followup_gaps = (np.concatenate(read_gaps)
                                 if read_gaps else np.array([]))
    result.write_followup_gaps = (np.concatenate(write_gaps)
                                  if write_gaps else np.array([]))

    # Reuse rates.
    ro_multi = ro_total = 0
    wo_rewrite = wo_read = wo_total = 0
    rw_multi = rw_total = 0
    for usages in usage_by_path.values():
        n_ro = usages.count("read-only")
        n_wo = usages.count("write-only")
        n_rw = usages.count("read-write")
        if n_ro:
            ro_total += 1
            if n_ro > 1:
                ro_multi += 1
        if n_wo:
            wo_total += 1
            if n_wo > 1:
                wo_rewrite += 1
            if n_ro > 0 or n_rw > 0:
                wo_read += 1
        if n_rw:
            rw_total += 1
            if n_rw > 1:
                rw_multi += 1
    if ro_total:
        result.read_only_reopened_pct = 100.0 * ro_multi / ro_total
    if wo_total:
        result.write_only_rewritten_pct = 100.0 * wo_rewrite / wo_total
        result.write_then_read_pct = 100.0 * wo_read / wo_total
    if rw_total:
        result.read_write_reopened_pct = 100.0 * rw_multi / rw_total

    # Error rates.
    n_opens = len(instances)
    if n_opens:
        result.open_failure_pct = 100.0 * n_failures / n_opens
    if n_failures:
        result.failure_not_found_pct = 100.0 * n_not_found / n_failures
        result.failure_collision_pct = 100.0 * n_collision / n_failures
    reads_mask = wh.mask_reads
    writes_mask = wh.mask_writes
    if reads_mask.any():
        read_errors = (wh.status[reads_mask] >= 0xC0000000).mean()
        result.read_failure_pct = 100.0 * float(read_errors)
    if writes_mask.any():
        write_errors = (wh.status[writes_mask] >= 0xC0000000).mean()
        result.write_failure_pct = 100.0 * float(write_errors)
    control_mask = wh.mask_kind(
        *(k for k in TraceEventKind
          if "QUERY" in k.name or "SET" in k.name or "FSCTL" in k.name))
    if control_mask.any():
        failures = (wh.status[control_mask] >= 0xC0000000).mean()
        result.control_failure_pct = 100.0 * float(failures)
    return result
