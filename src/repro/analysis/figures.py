"""Figure-series export: every paper figure as plain data.

``figure_series`` returns, for each figure, the (x, y) series that would
be plotted — so downstream users can regenerate the paper's plots with
any tool, and ``write_csv`` dumps them to files.  The same code paths the
benchmarks assert on produce the series, so exported data and reported
numbers cannot diverge.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.common.clock import TICKS_PER_MILLISECOND

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.warehouse import TraceWarehouse


def figure_series(wh: "TraceWarehouse",
                  rng: np.random.Generator | None = None
                  ) -> dict[str, dict[str, tuple]]:
    """All figure series: {figure: {series name: (x array, y array)}}.

    x units follow the paper's axes: bytes for size/run figures,
    milliseconds for time CDFs, microseconds for latency CDFs.
    """
    from repro.analysis.fastio import REQUEST_TYPES, analyze_fastio
    from repro.analysis.heavytail import analyze_heavy_tails
    from repro.analysis.lifetimes import analyze_lifetimes
    from repro.analysis.opens import analyze_opens
    from repro.analysis.patterns import (USAGES, file_size_distributions,
                                         run_length_distributions)
    from repro.stats.heavy_tail import llcd_points

    if rng is None:
        rng = np.random.default_rng(0)
    figures: dict[str, dict[str, tuple]] = {}

    runs = run_length_distributions(wh)
    figures["fig01_run_length_by_files"] = {
        "read_runs": runs.by_files(True),
        "write_runs": runs.by_files(False),
    }
    figures["fig02_run_length_by_bytes"] = {
        "read_runs": runs.by_bytes(True),
        "write_runs": runs.by_bytes(False),
    }

    sizes = file_size_distributions(wh)
    figures["fig03_file_size_by_opens"] = {
        usage: sizes.by_opens(usage) for usage in USAGES
        if sizes.sizes[usage].size}
    figures["fig04_file_size_by_bytes"] = {
        usage: sizes.by_bytes(usage) for usage in USAGES
        if sizes.sizes[usage].size}

    # Figure 5: open time CDFs in milliseconds, local vs remote.
    from repro.stats.descriptive import cdf_points
    all_t = [s.session_duration for s in wh.instances
             if not s.open_failed and s.has_data]
    local_t = [s.session_duration for s in wh.instances
               if not s.open_failed and s.has_data and not s.is_remote]
    remote_t = [s.session_duration for s in wh.instances
                if not s.open_failed and s.has_data and s.is_remote]
    fig5 = {"all": cdf_points(np.asarray(all_t) / TICKS_PER_MILLISECOND)}
    if local_t:
        fig5["local"] = cdf_points(np.asarray(local_t)
                                   / TICKS_PER_MILLISECOND)
    if remote_t:
        fig5["network"] = cdf_points(np.asarray(remote_t)
                                     / TICKS_PER_MILLISECOND)
    figures["fig05_open_times"] = fig5

    lifetimes = analyze_lifetimes(wh)
    fig6 = {}
    for method in ("overwrite", "explicit", "temporary"):
        x, p = lifetimes.lifetime_cdf(method)
        if x.size:
            fig6[method] = (x, p)
    figures["fig06_new_file_lifetimes"] = fig6
    figures["fig07_size_vs_lifetime"] = {
        "scatter": lifetimes.size_lifetime_sample()}

    opens = analyze_opens(wh)
    figures["fig11_open_interarrival"] = {
        purpose: opens.interarrival_cdf(purpose)
        for purpose in ("all", "data", "control")}
    figures["fig12_session_lifetime"] = {
        population: opens.session_cdf(population)
        for population in ("all", "data", "control")}

    tails = analyze_heavy_tails(wh, rng)
    figures["fig10_llcd"] = {
        "open_interarrival": llcd_points(opens.interarrival_all)}
    if tails.burstiness is not None:
        figures["fig08_burstiness"] = {
            "trace_iod": (np.asarray(tails.burstiness.intervals),
                          np.asarray(tails.burstiness.trace_iod)),
            "poisson_iod": (np.asarray(tails.burstiness.intervals),
                            np.asarray(tails.burstiness.poisson_iod)),
        }

    fastio = analyze_fastio(wh)
    figures["fig13_latency"] = {
        rt: fastio.latency_cdf(rt) for rt in REQUEST_TYPES
        if fastio.latencies_micros[rt].size}
    figures["fig14_request_size"] = {
        rt: fastio.size_cdf(rt) for rt in REQUEST_TYPES
        if fastio.sizes[rt].size}
    return figures


def write_csv(figures: dict[str, dict[str, tuple]],
              directory: Union[str, Path]) -> list[Path]:
    """One CSV per figure: columns are series interleaved as x,y pairs."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for figure, series in figures.items():
        path = directory / f"{figure}.csv"
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            header = []
            columns = []
            for name, (x, y) in series.items():
                header.extend([f"{name}_x", f"{name}_y"])
                columns.append(np.asarray(x, dtype=float))
                columns.append(np.asarray(y, dtype=float))
            writer.writerow(header)
            length = max((c.size for c in columns), default=0)
            for i in range(length):
                writer.writerow(
                    ["" if i >= c.size else repr(float(c[i]))
                     for c in columns])
        paths.append(path)
    return paths
