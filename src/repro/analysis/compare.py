"""Warehouse comparison: quantify how similar two traces are.

Used to validate the §7-point-3 loop (a fitted synthetic benchmark should
score close to its source trace) and for cross-seed regression: two runs
of the same workload should be statistically close even though their
event streams differ.

The score compares the metric vector below with per-metric relative
differences; ``ks_distance`` compares a full distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.warehouse import TraceWarehouse


def ks_distance(a, b) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (0 identical, 1 disjoint)."""
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    if a.size == 0 or b.size == 0:
        return float("nan")
    values = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, values, side="right") / a.size
    cdf_b = np.searchsorted(b, values, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def _metric_vector(wh: "TraceWarehouse") -> dict[str, float]:
    from repro.analysis.fastio import analyze_fastio
    from repro.analysis.opens import analyze_opens
    from repro.analysis.patterns import access_pattern_table

    opens = analyze_opens(wh)
    fastio = analyze_fastio(wh)
    patterns = access_pattern_table(wh)
    metrics = {
        "control_share_pct": opens.control_open_share_pct,
        "open_failure_pct": opens.open_failure_pct,
        "fastio_read_share_pct": fastio.fastio_read_share_pct,
        "fastio_write_share_pct": fastio.fastio_write_share_pct,
        "sessions_under_1ms_pct":
            100.0 * opens.fraction_sessions_shorter_than(1.0),
        "ro_share_pct": patterns.cell("read-only", "usage").accesses_mean,
        "wo_share_pct": patterns.cell("write-only", "usage").accesses_mean,
    }
    return metrics


@dataclass
class TraceComparison:
    """Outcome of comparing two warehouses."""

    metrics_a: dict[str, float]
    metrics_b: dict[str, float]
    # Distribution distances (KS statistics).
    interarrival_ks: float = float("nan")
    session_duration_ks: float = float("nan")
    read_size_ks: float = float("nan")

    def metric_gaps(self) -> dict[str, float]:
        """Absolute percentage-point gap per metric (NaN-safe)."""
        gaps = {}
        for key in self.metrics_a:
            a, b = self.metrics_a[key], self.metrics_b.get(key, float("nan"))
            gaps[key] = abs(a - b) if np.isfinite(a) and np.isfinite(b) \
                else float("nan")
        return gaps

    def max_metric_gap(self) -> float:
        gaps = [g for g in self.metric_gaps().values() if np.isfinite(g)]
        return max(gaps) if gaps else float("nan")

    def format(self) -> str:
        lines = ["%-26s %10s %10s %8s" % ("metric", "A", "B", "gap")]
        for key, gap in self.metric_gaps().items():
            lines.append(f"{key:<26} {self.metrics_a[key]:10.1f} "
                         f"{self.metrics_b.get(key, float('nan')):10.1f} "
                         f"{gap:8.1f}")
        lines.append(f"KS(interarrival)={self.interarrival_ks:.3f}  "
                     f"KS(session)={self.session_duration_ks:.3f}  "
                     f"KS(read size)={self.read_size_ks:.3f}")
        return "\n".join(lines)


def compare_warehouses(a: "TraceWarehouse",
                       b: "TraceWarehouse") -> TraceComparison:
    """Compare two traces across headline metrics and distributions."""
    from repro.analysis.opens import analyze_opens

    opens_a = analyze_opens(a)
    opens_b = analyze_opens(b)
    result = TraceComparison(metrics_a=_metric_vector(a),
                             metrics_b=_metric_vector(b))
    result.interarrival_ks = ks_distance(opens_a.interarrival_all,
                                         opens_b.interarrival_all)
    result.session_duration_ks = ks_distance(opens_a.session_all,
                                             opens_b.session_all)
    reads_a = a.returned[a.mask_reads & a.mask_success]
    reads_b = b.returned[b.mask_reads & b.mask_success]
    result.read_size_ks = ks_distance(reads_a[reads_a > 0],
                                      reads_b[reads_b > 0])
    return result
