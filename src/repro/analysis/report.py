"""The table-1 observation summary.

Runs every per-section analysis and assembles the paper's summary-of-
observations table with measured values next to the paper's, so a single
call reports the whole reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.common.clock import TICKS_PER_SECOND
from repro.stats.descriptive import cdf_quantile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.warehouse import TraceWarehouse


@dataclass
class Observation:
    """One table-1 line: the paper's claim and our measured value."""

    key: str
    paper: str
    measured: float
    unit: str = "%"

    def format(self) -> str:
        if np.isnan(self.measured):
            value = "n/a"
        elif self.unit == "%":
            value = f"{self.measured:.1f}%"
        else:
            value = f"{self.measured:.3g} {self.unit}"
        return f"  {self.key:<52} paper: {self.paper:<18} measured: {value}"


@dataclass
class ObservationSummary:
    """All table-1 observations, measured from one study."""

    observations: dict[str, Observation] = field(default_factory=dict)

    def add(self, key: str, paper: str, measured: float,
            unit: str = "%") -> None:
        self.observations[key] = Observation(key, paper, measured, unit)

    def value(self, key: str) -> float:
        return self.observations[key].measured

    def format(self) -> str:
        lines = ["Table 1 — summary of observations (paper vs measured):"]
        lines.extend(o.format() for o in self.observations.values())
        return "\n".join(lines)


def summarize_observations(wh: "TraceWarehouse",
                           counters: Optional[dict[str, dict[str, int]]] = None
                           ) -> ObservationSummary:
    """Measure every table-1 observation from a study's warehouse."""
    from repro.analysis.cache import analyze_cache
    from repro.analysis.fastio import analyze_fastio
    from repro.analysis.lifetimes import analyze_lifetimes
    from repro.analysis.opens import analyze_opens
    from repro.analysis.patterns import (access_pattern_table,
                                         file_size_distributions)
    from repro.analysis.heavytail import analyze_heavy_tails

    summary = ObservationSummary()
    instances = [s for s in wh.instances if not s.open_failed]
    data_instances = [s for s in instances if s.has_data]

    # -- comparison with older traces ---------------------------------- #
    opens = analyze_opens(wh)
    summary.add("files open < 10ms (data sessions)", "75%",
                100.0 * opens.fraction_sessions_shorter_than(10.0, "data"))
    sizes = file_size_distributions(wh)
    x, p = sizes.combined_by_opens()
    if x.size:
        q80 = cdf_quantile(x, p, 0.80)
        summary.add("80th percentile of opened file size", "26 KB",
                    q80 / 1024.0, unit="KB")
    patterns = access_pattern_table(wh)
    ro_whole = patterns.cell("read-only", "whole").accesses_mean
    ro_seq = patterns.cell("read-only", "sequential").accesses_mean
    summary.add("read-only sequential access (whole+partial)", "~88%",
                ro_whole + ro_seq)
    lifetimes = analyze_lifetimes(wh)
    summary.add("new files deleted within 4s (all methods)", "~80%",
                100.0 * lifetimes.fraction_deleted_within(4.0))
    shares = lifetimes.method_shares()
    summary.add("deletions by overwrite/truncate", "37%", shares["overwrite"])
    summary.add("deletions by explicit delete", "62%", shares["explicit"])
    summary.add("deletions by temporary attribute", "1%", shares["temporary"])
    summary.add("overwrites within 4ms of creation", "~75%",
                100.0 * lifetimes.fraction_deleted_within(0.004, "overwrite"))
    summary.add("deleted files that could have been temporary", "25-35%",
                lifetimes.could_have_used_temporary_pct())

    # -- operational characteristics ------------------------------------ #
    summary.add("opens for control/directory operations", "74%",
                opens.control_open_share_pct)
    summary.add("open requests that fail", "12%", opens.open_failure_pct)
    summary.add("failed opens: file did not exist", "52%",
                opens.failure_not_found_pct)
    summary.add("failed opens: already existed", "31%",
                opens.failure_collision_pct)
    summary.add("read requests that fail", "0.2%", opens.read_failure_pct)
    summary.add("sessions closed within 1ms of open", "40%",
                100.0 * opens.fraction_sessions_shorter_than(1.0, "all"))
    summary.add("sessions open less than 1s", "90%",
                100.0 * float(np.mean(
                    opens.session_all <= TICKS_PER_SECOND))
                if opens.session_all.size else float("nan"))

    cache = analyze_cache(wh, counters)
    summary.add("reads served from the file cache", "60%",
                cache.read_cache_hit_pct)
    summary.add("open-for-read needing a single prefetch", "92%",
                cache.single_prefetch_sufficient_pct)
    summary.add("read sessions with a single IO", "31%",
                cache.single_read_session_pct)

    fastio = analyze_fastio(wh)
    summary.add("reads over the FastIO path", "59%",
                fastio.fastio_read_share_pct)
    summary.add("writes over the FastIO path", "96%",
                fastio.fastio_write_share_pct)

    # -- distribution characteristics ------------------------------------ #
    tails = analyze_heavy_tails(wh)
    alphas = [v.alpha for v in tails.variables.values()
              if not np.isnan(v.alpha)]
    if alphas:
        summary.add("median heavy-tail alpha across variables", "1.2-1.7",
                    float(np.median(alphas)), unit="alpha")
        summary.add("variables with infinite variance (alpha<2)", "all",
                    100.0 * tails.heavy_tailed_fraction())
    pareto_wins = [v.pareto_fits_better for v in tails.variables.values()]
    if pareto_wins:
        summary.add("variables where Pareto beats Normal fit", "all",
                    100.0 * float(np.mean(pareto_wins)))
    summary.add("accesses from processes with direct user input", "<8%",
                tails.interactive_access_pct)
    if tails.burstiness is not None and tails.burstiness.trace_iod:
        ratios = [t / max(p, 1e-9)
                  for t, p in zip(tails.burstiness.trace_iod,
                                  tails.burstiness.poisson_iod)]
        summary.add("burstiness vs Poisson (max IoD ratio across scales)",
                    ">> 1", max(ratios), unit="x")
    return summary
