"""Per-usage-category comparison (§2, §6.1).

The paper samples five usage categories and repeatedly contrasts them:
scientific machines touch files an order of magnitude larger but do not
produce the peak loads (they read small portions of their huge files
through mapped views); the development stations produce the peak loads
with their 5–8 MB build-state files; walk-up and personal machines are
dominated by interactive application churn.  This module provides that
cut over the instance table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.common.clock import TICKS_PER_SECOND

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.warehouse import TraceWarehouse


@dataclass
class CategoryProfile:
    """One usage category's aggregate behaviour."""

    category: str
    n_machines: int = 0
    n_opens: int = 0
    n_data_opens: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    file_sizes: list = field(default_factory=list)
    paging_view_bytes: int = 0   # mapped-view / image paging data
    span_ticks: int = 0

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def throughput_kbs(self) -> float:
        """Mean per-machine throughput in KB/s."""
        if self.span_ticks <= 0 or self.n_machines == 0:
            return float("nan")
        seconds = self.span_ticks / TICKS_PER_SECOND
        return self.bytes_total / 1024.0 / seconds / self.n_machines

    @property
    def median_file_size(self) -> float:
        if not self.file_sizes:
            return float("nan")
        return float(np.median(self.file_sizes))

    @property
    def p90_file_size(self) -> float:
        if not self.file_sizes:
            return float("nan")
        return float(np.percentile(self.file_sizes, 90))


def by_category(wh: "TraceWarehouse",
                duration_ticks: int | None = None
                ) -> dict[str, CategoryProfile]:
    """Aggregate the instance table by machine usage category."""
    categories: dict[int, str] = {}
    for idx, name in enumerate(wh.machine_names):
        categories[idx] = wh.machine_categories.get(name, "unknown")
    if duration_ticks is None:
        duration_ticks = int(wh.t_end.max()) if wh.n_records else 0
    profiles: dict[str, CategoryProfile] = {}
    machine_counts: dict[str, set] = {}
    for inst in wh.instances:
        category = categories.get(inst.machine_idx, "unknown")
        profile = profiles.setdefault(category, CategoryProfile(category))
        machine_counts.setdefault(category, set()).add(inst.machine_idx)
        profile.n_opens += 1
        if inst.open_failed:
            continue
        if inst.has_data:
            profile.n_data_opens += 1
            profile.bytes_read += inst.bytes_read
            profile.bytes_written += inst.bytes_written
            profile.file_sizes.append(float(inst.file_size_max))
            if inst.image_access:
                profile.paging_view_bytes += inst.bytes_read
    for category, profile in profiles.items():
        profile.n_machines = len(machine_counts.get(category, set()))
        profile.span_ticks = duration_ticks
    return profiles


def format_category_table(profiles: dict[str, CategoryProfile]) -> str:
    """Render the per-category comparison."""
    lines = ["%-16s %8s %8s %10s %12s %12s %12s" % (
        "category", "machines", "opens", "KB/s", "median size",
        "p90 size", "view bytes")]
    for p in sorted(profiles.values(), key=lambda p: p.category):
        lines.append(
            f"{p.category:<16} {p.n_machines:8d} {p.n_opens:8d} "
            f"{p.throughput_kbs:10.1f} {p.median_file_size:12.0f} "
            f"{p.p90_file_size:12.0f} {p.paging_view_bytes:12d}")
    return "\n".join(lines)
