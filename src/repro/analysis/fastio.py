"""FastIO analysis (§10): figures 13 and 14.

The share of read/write requests served over the FastIO path versus the
IRP path, plus completion-latency and request-size CDFs for the four major
request types.  The IRP populations include paging traffic — every event
the trace filter saw counts, which is what makes the IRP latency CDF reach
into disk-time territory as in the paper's figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.nt.tracing.records import TraceEventKind
from repro.stats.descriptive import cdf_points

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.warehouse import TraceWarehouse

REQUEST_TYPES = ("fastio-read", "fastio-write", "irp-read", "irp-write")


@dataclass
class FastIoAnalysis:
    """The §10 measurements."""

    fastio_read_share_pct: float = float("nan")    # 59% in the paper
    fastio_write_share_pct: float = float("nan")   # 96%
    latencies_micros: dict[str, np.ndarray] = field(default_factory=dict)
    sizes: dict[str, np.ndarray] = field(default_factory=dict)

    def latency_cdf(self, request_type: str) -> tuple[np.ndarray, np.ndarray]:
        """Figure 13 data: completion latency (microseconds)."""
        return cdf_points(self.latencies_micros[request_type])

    def size_cdf(self, request_type: str) -> tuple[np.ndarray, np.ndarray]:
        """Figure 14 data: requested size (bytes)."""
        return cdf_points(self.sizes[request_type])

    def median_latency(self, request_type: str) -> float:
        arr = self.latencies_micros[request_type]
        return float(np.median(arr)) if arr.size else float("nan")


def analyze_fastio(wh: "TraceWarehouse") -> FastIoAnalysis:
    """Compute the FastIO-versus-IRP comparison."""
    result = FastIoAnalysis()
    # The IRP populations include the VM manager's paging traffic: the
    # paper's 59%/96% shares count every read/write event the filter saw,
    # and figure 13's IRP latency tail (up to 100 ms) is disk time.
    masks = {
        "fastio-read": wh.mask_kind(TraceEventKind.FASTIO_READ),
        "fastio-write": wh.mask_kind(TraceEventKind.FASTIO_WRITE),
        "irp-read": wh.mask_kind(TraceEventKind.IRP_READ),
        "irp-write": wh.mask_kind(TraceEventKind.IRP_WRITE),
    }
    for name, mask in masks.items():
        result.latencies_micros[name] = wh.durations_micros(mask)
        result.sizes[name] = wh.length[mask].astype(float)
    n_fr = int(masks["fastio-read"].sum())
    n_ir = int(masks["irp-read"].sum())
    n_fw = int(masks["fastio-write"].sum())
    n_iw = int(masks["irp-write"].sum())
    if n_fr + n_ir:
        result.fastio_read_share_pct = 100.0 * n_fr / (n_fr + n_ir)
    if n_fw + n_iw:
        result.fastio_write_share_pct = 100.0 * n_fw / (n_fw + n_iw)
    return result
