"""OpenMetrics / Prometheus text exposition of perf snapshots.

Renders per-machine :class:`~repro.nt.perf.PerfRegistry` snapshots (the
``perf.json`` document a study archives) in the OpenMetrics text format,
so the simulated fleet's counters can be loaded into any Prometheus-
compatible stack.  Mapping rules:

* series names gain an ``nt_`` prefix and dots become underscores
  (``cc.copy_reads`` → ``nt_cc_copy_reads``);
* counters are cumulative and carry the conventional ``_total`` suffix
  with ``# TYPE ... counter``;
* gauges map directly with ``# TYPE ... gauge``;
* latency histograms map to ``# TYPE ... summary`` with ``_count`` and
  ``_sum`` samples, the sum converted from ticks to seconds;
* every sample carries a ``machine`` label; sample lines are grouped
  family-major (all machines of one metric together, as the format
  requires) and the text ends with the ``# EOF`` terminator.

:func:`validate_openmetrics` is a small structural checker used by the
tests and the CI smoke job: it verifies the grammar this module relies
on (metric lines parse, families are contiguous and typed, counters end
in ``_total``, every family carries exactly one ``# HELP`` line — the
``storage.*`` device series included, the terminator is present) and
returns the list of problems found.
"""

from __future__ import annotations

import re
from typing import Mapping

from repro.common.clock import TICKS_PER_SECOND

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[^ ]+)$")
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def metric_name(series: str) -> str:
    """An OpenMetrics-legal family name for a perf series."""
    return "nt_" + re.sub(r"[^a-zA-Z0-9_]", "_", series)


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    # Integers stay integers; floats use repr (shortest round-trip form).
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def openmetrics_exposition(snapshots: Mapping[str, Mapping]) -> str:
    """Render per-machine perf snapshots as OpenMetrics text.

    ``snapshots`` maps machine name to a perf snapshot dict; machine
    order follows the mapping (study results are already in machine
    index order).  Families are emitted counters-then-gauges-then-
    histograms, alphabetically within each kind.
    """
    machines = list(snapshots.items())
    lines: list[str] = []

    def label(machine: str) -> str:
        return f'{{machine="{_escape_label(machine)}"}}'

    families: dict[str, set[str]] = {"counters": set(), "gauges": set(),
                                     "histograms": set()}
    for _machine, snap in machines:
        for kind in families:
            families[kind].update(snap.get(kind, {}))
    for series in sorted(families["counters"]):
        name = metric_name(series)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"# HELP {name} perf counter {series}")
        for machine, snap in machines:
            value = snap.get("counters", {}).get(series)
            if value is not None:
                lines.append(f"{name}_total{label(machine)} "
                             f"{_format_value(value)}")
    for series in sorted(families["gauges"]):
        name = metric_name(series)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"# HELP {name} perf gauge {series}")
        for machine, snap in machines:
            value = snap.get("gauges", {}).get(series)
            if value is not None:
                lines.append(f"{name}{label(machine)} "
                             f"{_format_value(value)}")
    for series in sorted(families["histograms"]):
        name = metric_name(series)
        lines.append(f"# TYPE {name} summary")
        lines.append(f"# HELP {name} latency histogram {series}")
        for machine, snap in machines:
            hist = snap.get("histograms", {}).get(series)
            if hist is not None:
                seconds = hist["sum_ticks"] / TICKS_PER_SECOND
                lines.append(f"{name}_count{label(machine)} "
                             f"{hist['count']}")
                lines.append(f"{name}_sum{label(machine)} "
                             f"{_format_value(seconds)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(snapshots: Mapping[str, Mapping], path) -> int:
    """Write the exposition to ``path``; returns the byte count."""
    text = openmetrics_exposition(snapshots)
    data = text.encode("utf-8")
    with open(path, "wb") as fh:
        fh.write(data)
    return len(data)


def validate_openmetrics(text: str) -> list[str]:
    """Structural check of an OpenMetrics text exposition.

    Covers the subset of the format this exporter emits: returns a list
    of problem strings (empty = valid).  Beyond sample grammar it checks
    family *metadata* coverage: every declared family — including the
    ``storage.*`` device counters and gauges — must carry exactly one
    well-formed ``# HELP`` line inside its contiguous block.
    """
    problems: list[str] = []
    if not text.endswith("\n"):
        problems.append("exposition must end with a newline")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        problems.append("missing '# EOF' terminator on the last line")
    types: dict[str, str] = {}
    family_order: list[str] = []
    helped: set[str] = set()
    current_family: str | None = None
    for i, line in enumerate(lines[:-1] if lines else [], start=1):
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                problems.append(f"line {i}: malformed TYPE line")
                continue
            _h, _t, name, kind = parts
            if not _NAME_RE.match(name):
                problems.append(f"line {i}: illegal family name {name!r}")
            if kind not in ("counter", "gauge", "summary", "histogram",
                            "unknown", "info", "stateset",
                            "gaugehistogram"):
                problems.append(f"line {i}: unknown family type {kind!r}")
            if name in types:
                problems.append(
                    f"line {i}: family {name!r} declared twice "
                    f"(families must be contiguous)")
            types[name] = kind
            family_order.append(name)
            current_family = name
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3]:
                problems.append(f"line {i}: malformed HELP line")
                continue
            name = parts[2]
            if not _NAME_RE.match(name):
                problems.append(
                    f"line {i}: illegal family name {name!r} in HELP")
                continue
            if name not in types:
                problems.append(
                    f"line {i}: HELP for {name!r} before its TYPE "
                    f"declaration")
                continue
            if name in helped:
                problems.append(
                    f"line {i}: family {name!r} has two HELP lines")
            helped.add(name)
            if name != current_family:
                problems.append(
                    f"line {i}: HELP for family {name!r} appears outside "
                    f"its contiguous block")
            continue
        if line.startswith("#"):
            continue
        if not line:
            problems.append(f"line {i}: blank line inside exposition")
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            problems.append(f"line {i}: unparsable sample line {line!r}")
            continue
        name = m.group("name")
        family = name
        for suffix in ("_total", "_count", "_sum", "_bucket", "_created"):
            if family.endswith(suffix):
                family = family[:-len(suffix)]
                break
        if family not in types and name in types:
            family = name
        if family not in types:
            problems.append(
                f"line {i}: sample {name!r} has no TYPE declaration")
            continue
        if family != current_family:
            problems.append(
                f"line {i}: sample for family {family!r} appears outside "
                f"its contiguous block")
        if types[family] == "counter" and not name.endswith("_total"):
            problems.append(
                f"line {i}: counter sample {name!r} must end in '_total'")
        labels = m.group("labels")
        if labels:
            for pair in labels.split(","):
                if not _LABEL_RE.match(pair):
                    problems.append(
                        f"line {i}: malformed label {pair!r}")
        value = m.group("value")
        try:
            float(value)
        except ValueError:
            problems.append(f"line {i}: non-numeric value {value!r}")
    for name in family_order:
        if name not in helped:
            problems.append(
                f"family {name!r} has no HELP line (metadata coverage)")
    return problems
