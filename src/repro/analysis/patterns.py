"""Access patterns (§6.2): table 3 and figures 1–4.

Instances with data operations are classified by usage (read-only /
write-only / read-write) and by pattern (whole-file sequential / other
sequential / random, with the cache manager's fuzzy offset comparison).
Per-machine percentages give the table's mean and min/max range columns —
the ranges being, as §7 argues, the truly important numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.stats.descriptive import cdf_points, weighted_cdf_points

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.sessions import Instance
    from repro.analysis.warehouse import TraceWarehouse

USAGES = ("read-only", "write-only", "read-write")
PATTERNS = ("whole", "sequential", "random")

# The Sprite values from table 3 (S columns), for comparison printing.
SPRITE_TABLE3 = {
    ("read-only", "usage"): (88.0, 80.0),
    ("read-only", "whole"): (78.0, 89.0),
    ("read-only", "sequential"): (19.0, 5.0),
    ("read-only", "random"): (3.0, 7.0),
    ("write-only", "usage"): (11.0, 19.0),
    ("write-only", "whole"): (67.0, 69.0),
    ("write-only", "sequential"): (29.0, 19.0),
    ("write-only", "random"): (4.0, 11.0),
    ("read-write", "usage"): (1.0, 1.0),
    ("read-write", "whole"): (0.0, 0.0),
    ("read-write", "sequential"): (0.0, 0.0),
    ("read-write", "random"): (100.0, 0.0),
}

# The paper's own NT means (W columns), for shape checking.
PAPER_NT_TABLE3 = {
    ("read-only", "usage"): (79.0, 59.0),
    ("read-only", "whole"): (68.0, 58.0),
    ("read-only", "sequential"): (20.0, 11.0),
    ("read-only", "random"): (12.0, 31.0),
    ("write-only", "usage"): (18.0, 26.0),
    ("write-only", "whole"): (78.0, 70.0),
    ("write-only", "sequential"): (7.0, 3.0),
    ("write-only", "random"): (15.0, 27.0),
    ("read-write", "usage"): (3.0, 15.0),
    ("read-write", "whole"): (22.0, 5.0),
    ("read-write", "sequential"): (3.0, 0.0),
    ("read-write", "random"): (74.0, 94.0),
}


@dataclass(frozen=True)
class PatternCell:
    """One table-3 cell: mean and range across machines, for both weights."""

    accesses_mean: float
    accesses_min: float
    accesses_max: float
    bytes_mean: float
    bytes_min: float
    bytes_max: float


@dataclass
class AccessPatternTable:
    """The full table 3."""

    # (usage, pattern) -> cell; pattern "usage" rows carry the class share.
    cells: dict[tuple[str, str], PatternCell]
    n_instances: int

    def cell(self, usage: str, pattern: str) -> PatternCell:
        return self.cells[(usage, pattern)]

    def format(self) -> str:
        """Render rows comparable to the paper's table 3."""
        lines = ["%-12s %-12s %28s %28s" % (
            "File usage", "Transfer", "Accesses% (mean [min,max])",
            "Bytes% (mean [min,max])")]
        for usage in USAGES:
            share = self.cells[(usage, "usage")]
            lines.append(
                f"{usage:<12} {'(share)':<12} "
                f"{share.accesses_mean:10.1f} [{share.accesses_min:5.1f},"
                f"{share.accesses_max:6.1f}] "
                f"{share.bytes_mean:10.1f} [{share.bytes_min:5.1f},"
                f"{share.bytes_max:6.1f}]")
            for pattern in PATTERNS:
                c = self.cells[(usage, pattern)]
                lines.append(
                    f"{'':<12} {pattern:<12} "
                    f"{c.accesses_mean:10.1f} [{c.accesses_min:5.1f},"
                    f"{c.accesses_max:6.1f}] "
                    f"{c.bytes_mean:10.1f} [{c.bytes_min:5.1f},"
                    f"{c.bytes_max:6.1f}]")
        return "\n".join(lines)


def _data_instances(wh: "TraceWarehouse") -> list["Instance"]:
    return [s for s in wh.instances
            if not s.open_failed and s.has_data and s.usage != "none"]


def access_pattern_table(wh: "TraceWarehouse") -> AccessPatternTable:
    """Compute table 3 from the instance table."""
    instances = _data_instances(wh)
    machines = sorted({s.machine_idx for s in instances})
    # percentage samples per machine: {(usage, pattern or 'usage'):
    #   ([accesses_pct...], [bytes_pct...])}
    samples: dict[tuple[str, str], tuple[list[float], list[float]]] = {
        (u, p): ([], []) for u in USAGES
        for p in PATTERNS + ("usage",)}
    for m in machines:
        subset = [s for s in instances if s.machine_idx == m]
        total_n = len(subset)
        total_b = sum(s.bytes_transferred for s in subset)
        if total_n == 0:
            continue
        for usage in USAGES:
            of_usage = [s for s in subset if s.usage == usage]
            usage_n = len(of_usage)
            usage_b = sum(s.bytes_transferred for s in of_usage)
            acc, byt = samples[(usage, "usage")]
            acc.append(100.0 * usage_n / total_n)
            byt.append(100.0 * usage_b / total_b if total_b else 0.0)
            for pattern in PATTERNS:
                of_pat = [s for s in of_usage
                          if s.access_pattern() == pattern]
                pat_n = len(of_pat)
                pat_b = sum(s.bytes_transferred for s in of_pat)
                acc, byt = samples[(usage, pattern)]
                acc.append(100.0 * pat_n / usage_n if usage_n else 0.0)
                byt.append(100.0 * pat_b / usage_b if usage_b else 0.0)
    cells = {}
    for key, (acc, byt) in samples.items():
        a = np.asarray(acc) if acc else np.array([0.0])
        b = np.asarray(byt) if byt else np.array([0.0])
        cells[key] = PatternCell(
            accesses_mean=float(a.mean()), accesses_min=float(a.min()),
            accesses_max=float(a.max()),
            bytes_mean=float(b.mean()), bytes_min=float(b.min()),
            bytes_max=float(b.max()))
    return AccessPatternTable(cells=cells, n_instances=len(instances))


@dataclass
class RunLengthDistributions:
    """Figures 1 and 2: sequential run length CDFs."""

    read_runs: np.ndarray
    write_runs: np.ndarray

    def by_files(self, reads: bool) -> tuple[np.ndarray, np.ndarray]:
        """Figure 1: CDF weighted by run count."""
        runs = self.read_runs if reads else self.write_runs
        return cdf_points(runs)

    def by_bytes(self, reads: bool) -> tuple[np.ndarray, np.ndarray]:
        """Figure 2: CDF weighted by bytes transferred."""
        runs = self.read_runs if reads else self.write_runs
        return weighted_cdf_points(runs, runs)


def run_length_distributions(wh: "TraceWarehouse") -> RunLengthDistributions:
    """Extract every sequential run from every data instance."""
    read_runs: list[int] = []
    write_runs: list[int] = []
    for inst in _data_instances(wh):
        read_runs.extend(inst.sequential_runs(reads=True))
        write_runs.extend(inst.sequential_runs(reads=False))
    return RunLengthDistributions(
        read_runs=np.asarray(read_runs, dtype=float),
        write_runs=np.asarray(write_runs, dtype=float))


@dataclass
class FileSizeDistributions:
    """Figures 3 and 4: file size CDFs per usage class."""

    sizes: dict[str, np.ndarray]
    bytes_weights: dict[str, np.ndarray]

    def by_opens(self, usage: str) -> tuple[np.ndarray, np.ndarray]:
        """Figure 3: weighted by the number of files opened."""
        return cdf_points(self.sizes[usage])

    def by_bytes(self, usage: str) -> tuple[np.ndarray, np.ndarray]:
        """Figure 4: weighted by bytes transferred."""
        return weighted_cdf_points(self.sizes[usage],
                                   self.bytes_weights[usage])

    def combined_by_opens(self) -> tuple[np.ndarray, np.ndarray]:
        all_sizes = np.concatenate([self.sizes[u] for u in USAGES])
        return cdf_points(all_sizes)


def file_size_distributions(wh: "TraceWarehouse") -> FileSizeDistributions:
    """File sizes of opened files, per usage class."""
    sizes: dict[str, list[float]] = {u: [] for u in USAGES}
    weights: dict[str, list[float]] = {u: [] for u in USAGES}
    for inst in _data_instances(wh):
        sizes[inst.usage].append(float(max(inst.file_size_max, 0)))
        weights[inst.usage].append(float(inst.bytes_transferred))
    return FileSizeDistributions(
        sizes={u: np.asarray(v) for u, v in sizes.items()},
        bytes_weights={u: np.asarray(v) for u, v in weights.items()})
