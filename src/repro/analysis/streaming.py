"""Streaming fleet observability: bounded-memory study aggregation.

The paper's collection servers aggregated ~190M records from 45 machines
— far more than one analysis process wants resident.  This module is the
streaming counterpart of the materialized :class:`TraceWarehouse`: a
:class:`StatsSketch` of deterministic, *mergeable* per-machine partial
aggregates (counts, byte sums, min/max, the exact log₂ latency
histograms from :mod:`repro.nt.perf`, and a deterministic mergeable
quantile digest for the figure 13/14 bands) produced by one-pass folds
over :class:`~repro.nt.tracing.store.StoreStream` /
:func:`~repro.nt.tracing.store.iter_trace_records`.

Three properties carry the design:

* **Bounded memory.**  A fold holds one machine's per-file-object event
  buffers at a time; after :meth:`MachineFold.finish` only the sketch's
  fixed-size digests and one small integer row per machine remain.  Peak
  memory is flat in machine count.
* **Order-independent, byte-identical merges.**  Every fleet-level
  aggregate is a commutative integer accumulation (sparse bucket adds,
  min/max, keep-smallest-K samples); per-machine rows live under
  disjoint machine indices.  Serialization is canonical JSON, so any
  shard order — serial, ``--workers K``, reversed — produces the same
  bytes.  (No floats are accumulated: floats appear only at render
  time, computed from the same integers in the same order.)
* **Exact reconciliation.**  The instance semantics come from the same
  :func:`~repro.analysis.sessions.build_instance` /
  :func:`~repro.analysis.lifetimes.death_events` code the warehouse
  uses, so :func:`sketch_from_warehouse` over the materialized path
  reproduces the streaming sketch *bit for bit* at seed scale —
  :func:`reconcile_sketch` asserts it.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional, Union, TYPE_CHECKING

import numpy as np

from repro.common.clock import (
    TICKS_PER_MICROSECOND,
    TICKS_PER_MILLISECOND,
    TICKS_PER_SECOND,
)
from repro.nt.perf import (
    BUCKET_EDGES_MICROS,
    LatencyHistogram,
    N_BUCKETS,
)
from repro.nt.tracing.records import TraceEventKind, extension_of
from repro.nt.tracing.store import StoreStream, study_paths

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from repro.analysis.sessions import Instance
    from repro.analysis.warehouse import TraceWarehouse
    from repro.nt.tracing.collector import TraceCollector
    from repro.workload.study import StudyResult

SKETCH_FORMAT = "nt-sketch-1"

# The figure 13/14 request-type split (mirrors repro.analysis.fastio).
REQUEST_TYPES = ("fastio-read", "fastio-write", "irp-read", "irp-write")
_KIND_TO_RTYPE = {
    int(TraceEventKind.IRP_READ): "irp-read",
    int(TraceEventKind.IRP_WRITE): "irp-write",
    int(TraceEventKind.FASTIO_READ): "fastio-read",
    int(TraceEventKind.FASTIO_WRITE): "fastio-write",
}
_READ_KINDS = frozenset((int(TraceEventKind.IRP_READ),
                         int(TraceEventKind.FASTIO_READ)))
_KIND_CREATE = int(TraceEventKind.IRP_CREATE)

_USAGES = ("read-only", "write-only", "read-write")
_PATTERNS = ("whole", "sequential", "random")
_METHODS = ("overwrite", "explicit", "temporary")

# Figure 7's scatter keeps a deterministic sample: the K smallest
# (lifetime, size) pairs.  Keep-smallest-K over multisets is associative
# and commutative, so the sample too merges order-independently.
DEATH_SAMPLE_CAP = 4096


# --------------------------------------------------------------------- #
# The quantile digest.

_SUB_BITS = 3                 # 8 linear sub-buckets per power-of-two octave
_SUB = 1 << _SUB_BITS


def digest_bucket(value: int) -> int:
    """Bucket index of a non-negative integer value.

    HDR-histogram-style comb: values below 8 get exact buckets; above,
    each power-of-two octave is split into 8 linear sub-buckets, giving a
    relative error of at most 1/8 at every magnitude.  All arithmetic is
    integer (bit_length and shifts) — no libm, so the mapping is
    identical on every platform.
    """
    if value < _SUB:
        return value
    octave = value.bit_length() - 1
    sub = (value - (1 << octave)) >> (octave - _SUB_BITS)
    return ((octave - _SUB_BITS) << _SUB_BITS) + sub + _SUB


def digest_bucket_upper(index: int) -> int:
    """The largest value mapping to bucket ``index`` (the inverse comb)."""
    if index < _SUB:
        return index
    group, sub = divmod(index - _SUB, _SUB)
    octave = group + _SUB_BITS
    return (1 << octave) + ((sub + 1) << (octave - _SUB_BITS)) - 1


class Digest:
    """Deterministic mergeable quantile digest over non-negative ints.

    Sparse integer bucket weights over the :func:`digest_bucket` comb
    plus exact n/weight/min/max.  Updates and merges are commutative
    integer sums, so partial digests merge order-independently and —
    through the sketch's canonical serialization — byte-identically
    across shards, which the shard-order property tests assert.
    """

    __slots__ = ("buckets", "n", "weight", "vmin", "vmax")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.n = 0            # samples added
        self.weight = 0       # total weight
        self.vmin = -1        # -1 = empty
        self.vmax = -1

    def add(self, value: int, weight: int = 1) -> None:
        if weight <= 0:
            return            # zero-weight samples carry no mass
        value = 0 if value < 0 else int(value)
        idx = digest_bucket(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + weight
        self.n += 1
        self.weight += weight
        if self.vmin < 0 or value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    def merge(self, other: "Digest") -> None:
        for idx, w in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + w
        self.n += other.n
        self.weight += other.weight
        if other.vmin >= 0 and (self.vmin < 0 or other.vmin < self.vmin):
            self.vmin = other.vmin
        if other.vmax > self.vmax:
            self.vmax = other.vmax

    def cdf_points(self, scale: float = 1.0
                   ) -> tuple[np.ndarray, np.ndarray]:
        """(x, cumulative fraction) over bucket upper edges, ``x/scale``.

        The last edge is clamped to the exact maximum, the first to the
        exact minimum, so single-bucket digests render faithfully.
        """
        if not self.weight:
            return np.array([]), np.array([])
        xs: list[float] = []
        ps: list[float] = []
        cum = 0
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            x = max(min(digest_bucket_upper(idx), self.vmax), self.vmin)
            xs.append(x / scale)
            ps.append(cum / self.weight)
        return np.asarray(xs), np.asarray(ps)

    def quantile(self, q: float) -> float:
        """Upper bucket edge below which a fraction ``q`` of weight falls,
        clamped to the observed [min, max]."""
        if not self.weight:
            return float("nan")
        need = q * self.weight
        cum = 0
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            if cum >= need:
                return float(
                    max(min(digest_bucket_upper(idx), self.vmax),
                        self.vmin))
        return float(self.vmax)

    def llcd_points(self) -> tuple[np.ndarray, np.ndarray]:
        """Figure 10: (log10 x, log10 ccdf) over the positive support."""
        if not self.weight:
            return np.array([]), np.array([])
        xs: list[float] = []
        ys: list[float] = []
        cum = 0
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            upper = max(min(digest_bucket_upper(idx), self.vmax), self.vmin)
            ccdf = (self.weight - cum) / self.weight
            if upper > 0 and ccdf > 0:
                xs.append(np.log10(upper))
                ys.append(np.log10(ccdf))
        return np.asarray(xs), np.asarray(ys)

    def to_dict(self) -> dict:
        return {"b": {str(k): self.buckets[k]
                      for k in sorted(self.buckets)},
                "n": self.n, "w": self.weight,
                "min": self.vmin, "max": self.vmax}

    @classmethod
    def from_dict(cls, doc: dict) -> "Digest":
        d = cls()
        d.buckets = {int(k): v for k, v in doc["b"].items()}
        d.n = doc["n"]
        d.weight = doc["w"]
        d.vmin = doc["min"]
        d.vmax = doc["max"]
        return d


def _hist_to_dict(h: LatencyHistogram) -> dict:
    return h.to_dict()


def _hist_from_dict(name: str, doc: dict) -> LatencyHistogram:
    h = LatencyHistogram(name)
    h.count = doc["count"]
    h.sum_ticks = doc["sum_ticks"]
    h.max_ticks = doc["max_ticks"]
    h.bucket_counts = list(doc["bucket_counts"])
    return h


def _hist_merge(a: LatencyHistogram, b: LatencyHistogram) -> None:
    a.count += b.count
    a.sum_ticks += b.sum_ticks
    if b.max_ticks > a.max_ticks:
        a.max_ticks = b.max_ticks
    a.bucket_counts = [x + y
                       for x, y in zip(a.bucket_counts, b.bucket_counts)]


# --------------------------------------------------------------------- #
# The sketch.

def _empty_usage_cells() -> dict:
    return {u: {"n": 0, "bytes": 0,
                "patterns": {p: {"n": 0, "bytes": 0} for p in _PATTERNS}}
            for u in _USAGES}


class StatsSketch:
    """Mergeable streaming aggregates for one shard of a fleet study.

    Fleet-level state: record/kind counts, time bounds, the figure 13/14
    latency histograms and request-size digests, run-length / file-size /
    open-time / lifetime / interarrival / session digests, the figure 8
    burst bins and the figure 7 keep-K death sample.  Per-machine state:
    one row of plain integers keyed by machine index (disjoint across
    shards), carrying exactly the counts the category and pattern tables
    need.
    """

    def __init__(self, burst_bin_ticks: int = TICKS_PER_SECOND) -> None:
        if burst_bin_ticks <= 0:
            raise ValueError("burst_bin_ticks must be positive")
        self.burst_bin_ticks = burst_bin_ticks
        # Record-level.
        self.n_records = 0
        self.t_min = -1
        self.t_max = -1
        self.kind_counts: dict[int, int] = {}
        self.record_bytes_read = 0
        self.record_bytes_written = 0
        self.latency = {rt: LatencyHistogram(f"sketch.{rt}")
                        for rt in REQUEST_TYPES}
        self.req_size = {rt: Digest() for rt in REQUEST_TYPES}
        self.bursts: dict[int, int] = {}
        # Instance-level.
        self.runs_files = {"read": Digest(), "write": Digest()}
        self.runs_bytes = {"read": Digest(), "write": Digest()}
        self.size_opens = {u: Digest() for u in _USAGES}
        self.size_bytes = {u: Digest() for u in _USAGES}
        self.open_time = {"all": Digest(), "local": Digest(),
                          "network": Digest()}
        self.lifetime = {m: Digest() for m in _METHODS}
        self.close_gap = {"overwrite": Digest(), "explicit": Digest()}
        self.death_size = Digest()
        self.death_lifetime = Digest()
        self.death_sample: list[tuple[int, int]] = []
        self.interarrival = {"all": Digest(), "data": Digest(),
                             "control": Digest()}
        self.session = {"all": Digest(), "data": Digest(),
                        "control": Digest()}
        self.category_sizes: dict[str, Digest] = {}
        # Per-machine rows, keyed by machine index.
        self.machines: dict[int, dict] = {}

    # -- folding ------------------------------------------------------- #

    def _update_record(self, kind: int, t_start: int, t_end: int,
                       length: int, returned: int) -> None:
        self.n_records += 1
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        if self.t_min < 0 or t_start < self.t_min:
            self.t_min = t_start
        if t_end > self.t_max:
            self.t_max = t_end
        rtype = _KIND_TO_RTYPE.get(kind)
        if rtype is not None:
            self.latency[rtype].observe(t_end - t_start)
            self.req_size[rtype].add(length)
            if kind in _READ_KINDS:
                self.record_bytes_read += returned
            else:
                self.record_bytes_written += returned
        elif kind == _KIND_CREATE:
            b = t_start // self.burst_bin_ticks
            self.bursts[b] = self.bursts.get(b, 0) + 1

    def _fold_instances(self, machine_idx: int, name: str, category: str,
                        n_records: int,
                        instances: list["Instance"]) -> None:
        """Fold one machine's finished instance list into the sketch.

        ``instances`` must be in (open_t, fo_id) order — the per-machine
        order the warehouse's instance table uses — so both paths walk
        identical sequences.
        """
        from repro.analysis.lifetimes import death_events

        if machine_idx in self.machines:
            raise ValueError(
                f"machine index {machine_idx} folded twice "
                f"(shards must be disjoint)")
        row = {
            "name": name, "category": category,
            "n_records": n_records, "n_instances": 0,
            "n_failed_opens": 0, "n_data": 0, "n_created": 0,
            "bytes": 0, "bytes_read": 0, "bytes_written": 0,
            "paging_view_bytes": 0,
            "usage": _empty_usage_cells(),
        }
        self.machines[machine_idx] = row
        cat_sizes = self.category_sizes.get(category)
        if cat_sizes is None:
            cat_sizes = self.category_sizes[category] = Digest()

        all_times: list[int] = []
        data_times: list[int] = []
        control_times: list[int] = []
        for inst in instances:
            row["n_instances"] += 1
            all_times.append(inst.open_t)
            if inst.open_failed:
                row["n_failed_opens"] += 1
                continue
            duration = inst.session_duration
            self.session["all"].add(duration)
            if inst.has_data:
                data_times.append(inst.open_t)
                self.session["data"].add(duration)
                self.open_time["all"].add(duration)
                if inst.is_remote:
                    self.open_time["network"].add(duration)
                else:
                    self.open_time["local"].add(duration)
                # has_data implies usage != 'none': a data instance.
                usage_cell = row["usage"][inst.usage]
                transferred = inst.bytes_transferred
                usage_cell["n"] += 1
                usage_cell["bytes"] += transferred
                pat = usage_cell["patterns"][inst.access_pattern()]
                pat["n"] += 1
                pat["bytes"] += transferred
                row["n_data"] += 1
                row["bytes"] += transferred
                row["bytes_read"] += inst.bytes_read
                row["bytes_written"] += inst.bytes_written
                if inst.image_access:
                    row["paging_view_bytes"] += inst.bytes_read
                size = max(inst.file_size_max, 0)
                self.size_opens[inst.usage].add(size)
                self.size_bytes[inst.usage].add(size, transferred)
                cat_sizes.add(size)
                for run in inst.sequential_runs(reads=True):
                    self.runs_files["read"].add(run)
                    self.runs_bytes["read"].add(run, run)
                for run in inst.sequential_runs(reads=False):
                    self.runs_files["write"].add(run)
                    self.runs_bytes["write"].add(run, run)
            else:
                control_times.append(inst.open_t)
                self.session["control"].add(duration)

        for times, purpose in ((all_times, "all"), (data_times, "data"),
                               (control_times, "control")):
            if len(times) < 2:
                continue
            times.sort()
            digest = self.interarrival[purpose]
            prev = times[0]
            for t in times[1:]:
                digest.add(t - prev)
                prev = t

        n_created, deaths = death_events(instances)
        row["n_created"] = n_created
        sample: list[tuple[int, int]] = []
        for d in deaths:
            self.lifetime[d.method].add(d.lifetime)
            if d.method in self.close_gap:
                self.close_gap[d.method].add(d.close_gap)
            self.death_size.add(d.size)
            self.death_lifetime.add(d.lifetime)
            sample.append((d.lifetime, d.size))
        sample.sort()
        self.death_sample = sorted(
            self.death_sample + sample[:DEATH_SAMPLE_CAP]
        )[:DEATH_SAMPLE_CAP]

    # -- merging ------------------------------------------------------- #

    def merge(self, other: "StatsSketch") -> None:
        """Commutative merge of a disjoint shard into this sketch."""
        if other.burst_bin_ticks != self.burst_bin_ticks:
            raise ValueError(
                f"burst bin mismatch: {self.burst_bin_ticks} vs "
                f"{other.burst_bin_ticks}")
        overlap = self.machines.keys() & other.machines.keys()
        if overlap:
            raise ValueError(
                f"shards overlap on machine indices {sorted(overlap)}")
        self.n_records += other.n_records
        if other.t_min >= 0 and (self.t_min < 0 or other.t_min < self.t_min):
            self.t_min = other.t_min
        if other.t_max > self.t_max:
            self.t_max = other.t_max
        for kind, n in other.kind_counts.items():
            self.kind_counts[kind] = self.kind_counts.get(kind, 0) + n
        self.record_bytes_read += other.record_bytes_read
        self.record_bytes_written += other.record_bytes_written
        for rt in REQUEST_TYPES:
            _hist_merge(self.latency[rt], other.latency[rt])
            self.req_size[rt].merge(other.req_size[rt])
        for b, n in other.bursts.items():
            self.bursts[b] = self.bursts.get(b, 0) + n
        for direction in ("read", "write"):
            self.runs_files[direction].merge(other.runs_files[direction])
            self.runs_bytes[direction].merge(other.runs_bytes[direction])
        for u in _USAGES:
            self.size_opens[u].merge(other.size_opens[u])
            self.size_bytes[u].merge(other.size_bytes[u])
        for k in self.open_time:
            self.open_time[k].merge(other.open_time[k])
        for m in _METHODS:
            self.lifetime[m].merge(other.lifetime[m])
        for m in self.close_gap:
            self.close_gap[m].merge(other.close_gap[m])
        self.death_size.merge(other.death_size)
        self.death_lifetime.merge(other.death_lifetime)
        self.death_sample = sorted(
            self.death_sample + other.death_sample)[:DEATH_SAMPLE_CAP]
        for k in self.interarrival:
            self.interarrival[k].merge(other.interarrival[k])
        for k in self.session:
            self.session[k].merge(other.session[k])
        for category, digest in other.category_sizes.items():
            mine = self.category_sizes.get(category)
            if mine is None:
                self.category_sizes[category] = mine = Digest()
            mine.merge(digest)
        self.machines.update(other.machines)

    # -- serialization ------------------------------------------------- #

    def to_dict(self) -> dict:
        return {
            "format": SKETCH_FORMAT,
            "burst_bin_ticks": self.burst_bin_ticks,
            "records": {
                "n": self.n_records,
                "t_min": self.t_min, "t_max": self.t_max,
                "kinds": {str(k): self.kind_counts[k]
                          for k in sorted(self.kind_counts)},
                "bytes_read": self.record_bytes_read,
                "bytes_written": self.record_bytes_written,
                "latency": {rt: _hist_to_dict(self.latency[rt])
                            for rt in REQUEST_TYPES},
                "req_size": {rt: self.req_size[rt].to_dict()
                             for rt in REQUEST_TYPES},
                "bursts": {str(b): self.bursts[b]
                           for b in sorted(self.bursts)},
            },
            "instances": {
                "runs_files": {d: self.runs_files[d].to_dict()
                               for d in ("read", "write")},
                "runs_bytes": {d: self.runs_bytes[d].to_dict()
                               for d in ("read", "write")},
                "size_opens": {u: self.size_opens[u].to_dict()
                               for u in _USAGES},
                "size_bytes": {u: self.size_bytes[u].to_dict()
                               for u in _USAGES},
                "open_time": {k: v.to_dict()
                              for k, v in self.open_time.items()},
                "lifetime": {m: self.lifetime[m].to_dict()
                             for m in _METHODS},
                "close_gap": {m: self.close_gap[m].to_dict()
                              for m in sorted(self.close_gap)},
                "death_size": self.death_size.to_dict(),
                "death_lifetime": self.death_lifetime.to_dict(),
                "death_sample": [list(p) for p in self.death_sample],
                "interarrival": {k: v.to_dict()
                                 for k, v in self.interarrival.items()},
                "session": {k: v.to_dict()
                            for k, v in self.session.items()},
            },
            "category_sizes": {c: self.category_sizes[c].to_dict()
                               for c in sorted(self.category_sizes)},
            "machines": {str(idx): self.machines[idx]
                         for idx in sorted(self.machines)},
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "StatsSketch":
        if doc.get("format") != SKETCH_FORMAT:
            raise ValueError(
                f"not a {SKETCH_FORMAT} document "
                f"(format={doc.get('format')!r})")
        sketch = cls(burst_bin_ticks=doc["burst_bin_ticks"])
        rec = doc["records"]
        sketch.n_records = rec["n"]
        sketch.t_min = rec["t_min"]
        sketch.t_max = rec["t_max"]
        sketch.kind_counts = {int(k): v for k, v in rec["kinds"].items()}
        sketch.record_bytes_read = rec["bytes_read"]
        sketch.record_bytes_written = rec["bytes_written"]
        sketch.latency = {rt: _hist_from_dict(f"sketch.{rt}",
                                              rec["latency"][rt])
                          for rt in REQUEST_TYPES}
        sketch.req_size = {rt: Digest.from_dict(rec["req_size"][rt])
                           for rt in REQUEST_TYPES}
        sketch.bursts = {int(b): n for b, n in rec["bursts"].items()}
        inst = doc["instances"]
        sketch.runs_files = {d: Digest.from_dict(inst["runs_files"][d])
                             for d in ("read", "write")}
        sketch.runs_bytes = {d: Digest.from_dict(inst["runs_bytes"][d])
                             for d in ("read", "write")}
        sketch.size_opens = {u: Digest.from_dict(inst["size_opens"][u])
                             for u in _USAGES}
        sketch.size_bytes = {u: Digest.from_dict(inst["size_bytes"][u])
                             for u in _USAGES}
        sketch.open_time = {k: Digest.from_dict(v)
                            for k, v in inst["open_time"].items()}
        sketch.lifetime = {m: Digest.from_dict(inst["lifetime"][m])
                           for m in _METHODS}
        sketch.close_gap = {m: Digest.from_dict(v)
                            for m, v in inst["close_gap"].items()}
        sketch.death_size = Digest.from_dict(inst["death_size"])
        sketch.death_lifetime = Digest.from_dict(inst["death_lifetime"])
        sketch.death_sample = [tuple(p) for p in inst["death_sample"]]
        sketch.interarrival = {k: Digest.from_dict(v)
                               for k, v in inst["interarrival"].items()}
        sketch.session = {k: Digest.from_dict(v)
                          for k, v in inst["session"].items()}
        sketch.category_sizes = {c: Digest.from_dict(v)
                                 for c, v in doc["category_sizes"].items()}
        sketch.machines = {int(idx): row
                           for idx, row in doc["machines"].items()}
        return sketch

    def canonical_bytes(self) -> bytes:
        """Canonical serialization: the byte-identity surface."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def sha256(self) -> str:
        return hashlib.sha256(self.canonical_bytes()).hexdigest()

    # -- convenience --------------------------------------------------- #

    @property
    def n_machines(self) -> int:
        return len(self.machines)

    @property
    def n_instances(self) -> int:
        return sum(row["n_instances"] for row in self.machines.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<StatsSketch {self.n_records} records, "
                f"{self.n_machines} machines>")


# --------------------------------------------------------------------- #
# Producers: one-pass folds.

class MachineFold:
    """One-pass fold of a single machine's trace into a sketch.

    Records arrive in trace order via :meth:`add_record`; per-file-object
    event tuples are buffered (bounded by one machine's trace), then
    :meth:`finish` rebuilds the instances with the shared
    :func:`~repro.analysis.sessions.build_instance`, folds them, and
    drops the buffers.
    """

    def __init__(self, sketch: StatsSketch, machine_idx: int,
                 name: str, category: str) -> None:
        self.sketch = sketch
        self.machine_idx = machine_idx
        self.name = name
        self.category = category
        self.n_records = 0
        self._events: dict[int, list[tuple]] = {}

    def add_record(self, r) -> None:
        self.n_records += 1
        self.sketch._update_record(r.kind, r.t_start, r.t_end,
                                   r.length, r.returned)
        self._events.setdefault(r.fo_id, []).append(
            (r.kind, r.t_start, r.t_end, r.status, r.irp_flags, r.offset,
             r.length, r.returned, r.file_size, r.disposition, r.options,
             r.attributes, r.info, r.pid))

    def finish(self, name_records, process_names,
               process_interactive) -> None:
        from repro.analysis.sessions import build_instance

        # Last name record per file object wins, as in the warehouse.
        file_info: dict[int, tuple] = {}
        for nr in name_records:
            file_info[nr.fo_id] = (nr.path, extension_of(nr.path),
                                   nr.volume_label, nr.volume_is_remote)

        def process_lookup(pid: int):
            pname = process_names.get(pid)
            if pname is None:
                return None
            return (pname, process_interactive.get(pid, False))

        instances: list["Instance"] = []
        for fo_id, events in self._events.items():
            # Stable sort by t_start: ties keep collector append order,
            # exactly like the warehouse's lexsort.
            events.sort(key=lambda e: e[1])
            inst = build_instance(self.machine_idx, fo_id, events,
                                  file_info.get(fo_id), process_lookup)
            if inst is not None:
                instances.append(inst)
        instances.sort(key=lambda s: (s.open_t, s.fo_id))
        self._events = {}
        self.sketch._fold_instances(self.machine_idx, self.name,
                                    self.category, self.n_records,
                                    instances)


def fold_collector(sketch: StatsSketch, machine_idx: int, category: str,
                   collector: "TraceCollector") -> None:
    """Fold one in-memory collector into the sketch (streaming campaign
    path: the collector is discarded right after)."""
    fold = MachineFold(sketch, machine_idx, collector.machine_name,
                       category)
    for r in collector.records:
        fold.add_record(r)
    fold.finish(collector.name_records, collector.process_names,
                collector.process_interactive)


def fold_store_file(sketch: StatsSketch, machine_idx: int, category: str,
                    path: Union[str, "Path"]) -> None:
    """Fold one archived ``.nttrace`` file, never materialising it."""
    stream = StoreStream(path)
    fold = MachineFold(sketch, machine_idx, stream.machine_name, category)
    for r in stream.records():
        fold.add_record(r)
    names, process_names, process_interactive = stream.tail_sections()
    fold.finish(names, process_names, process_interactive)


def sketch_from_study(result: "StudyResult",
                      burst_bin_ticks: int = TICKS_PER_SECOND
                      ) -> StatsSketch:
    """Fold a finished in-memory study, machine by machine."""
    sketch = StatsSketch(burst_bin_ticks=burst_bin_ticks)
    categories = result.machine_categories
    for midx, collector in enumerate(result.collectors):
        fold_collector(sketch, midx,
                       categories.get(collector.machine_name, "unknown"),
                       collector)
    return sketch


def sketch_from_archive(directory: Union[str, "Path"],
                        categories: Optional[dict[str, str]] = None,
                        burst_bin_ticks: int = TICKS_PER_SECOND
                        ) -> StatsSketch:
    """Fold an archived study directory, one store file at a time."""
    sketch = StatsSketch(burst_bin_ticks=burst_bin_ticks)
    categories = categories or {}
    for midx, path in enumerate(study_paths(directory)):
        category = categories.get(path.stem, "unknown")
        fold_store_file(sketch, midx, category, path)
    return sketch


def sketch_from_warehouse(wh: "TraceWarehouse",
                          burst_bin_ticks: int = TICKS_PER_SECOND
                          ) -> StatsSketch:
    """The materialized control path: the same sketch computed from the
    columnar warehouse, for exact reconciliation at seed scale."""
    sketch = StatsSketch(burst_bin_ticks=burst_bin_ticks)
    n_machines = len(wh.machine_names)
    categories = {idx: wh.machine_categories.get(name, "unknown")
                  for idx, name in enumerate(wh.machine_names)}
    # Record-level stats from the columns (rows are machine-major).
    per_machine_records = np.bincount(
        wh.machine_idx, minlength=n_machines) if wh.n_records \
        else np.zeros(n_machines, dtype=np.int64)
    for kind, t_start, t_end, length, returned in zip(
            wh.kind.tolist(), wh.t_start.tolist(), wh.t_end.tolist(),
            wh.length.tolist(), wh.returned.tolist()):
        sketch._update_record(kind, t_start, t_end, length, returned)
    # Instance-level stats: wh.instances is sorted by (machine, open_t),
    # so per-machine groups preserve the order the streaming fold uses.
    groups: dict[int, list] = {idx: [] for idx in range(n_machines)}
    for inst in wh.instances:
        groups[inst.machine_idx].append(inst)
    for idx, name in enumerate(wh.machine_names):
        sketch._fold_instances(idx, name, categories[idx],
                               int(per_machine_records[idx]), groups[idx])
    return sketch


# --------------------------------------------------------------------- #
# Reconciliation.

def _diff_docs(prefix: str, a, b, problems: list[str],
               limit: int = 25) -> None:
    if len(problems) >= limit:
        return
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                problems.append(f"{prefix}{key}: only in warehouse sketch")
            elif key not in b:
                problems.append(f"{prefix}{key}: only in streaming sketch")
            else:
                _diff_docs(f"{prefix}{key}.", a[key], b[key], problems,
                           limit)
            if len(problems) >= limit:
                return
    elif a != b:
        problems.append(f"{prefix[:-1]}: streaming={a!r} warehouse={b!r}")


def reconcile_sketch(sketch: StatsSketch,
                     wh: "TraceWarehouse") -> list[str]:
    """Exact reconciliation: every count, byte sum, histogram bucket and
    digest bucket of the streaming sketch must equal the same sketch
    computed from the materialized warehouse.  Returns problem strings
    (empty = exact match)."""
    expected = sketch_from_warehouse(
        wh, burst_bin_ticks=sketch.burst_bin_ticks)
    problems: list[str] = []
    _diff_docs("", sketch.to_dict(), expected.to_dict(), problems)
    return problems


# --------------------------------------------------------------------- #
# Streaming tables and figure series.

class StreamingCategoryProfile:
    """Duck-typed :class:`~repro.analysis.categories.CategoryProfile`
    built from sketch rows; file-size quantiles come from the mergeable
    digest instead of a materialized sample list."""

    def __init__(self, category: str, span_ticks: int) -> None:
        self.category = category
        self.n_machines = 0
        self.n_opens = 0
        self.n_data_opens = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.paging_view_bytes = 0
        self.span_ticks = span_ticks
        self.size_digest = Digest()

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def throughput_kbs(self) -> float:
        if self.span_ticks <= 0 or self.n_machines == 0:
            return float("nan")
        seconds = self.span_ticks / TICKS_PER_SECOND
        return self.bytes_total / 1024.0 / seconds / self.n_machines

    @property
    def median_file_size(self) -> float:
        return self.size_digest.quantile(0.5)

    @property
    def p90_file_size(self) -> float:
        return self.size_digest.quantile(0.9)


def streaming_category_profiles(sketch: StatsSketch,
                                duration_ticks: Optional[int] = None
                                ) -> dict[str, StreamingCategoryProfile]:
    """The §6.1 category table off the streaming path."""
    if duration_ticks is None:
        duration_ticks = max(sketch.t_max, 0)
    profiles: dict[str, StreamingCategoryProfile] = {}
    for idx in sorted(sketch.machines):
        row = sketch.machines[idx]
        if row["n_instances"] == 0:
            continue
        profile = profiles.get(row["category"])
        if profile is None:
            profile = profiles[row["category"]] = StreamingCategoryProfile(
                row["category"], duration_ticks)
        profile.n_machines += 1
        profile.n_opens += row["n_instances"]
        profile.n_data_opens += row["n_data"]
        profile.bytes_read += row["bytes_read"]
        profile.bytes_written += row["bytes_written"]
        profile.paging_view_bytes += row["paging_view_bytes"]
    for category, profile in profiles.items():
        digest = sketch.category_sizes.get(category)
        if digest is not None:
            profile.size_digest = digest
    return profiles


def streaming_pattern_table(sketch: StatsSketch):
    """Table 3 off the streaming path.

    Float arithmetic deliberately mirrors
    :func:`~repro.analysis.patterns.access_pattern_table` — same integer
    inputs, same operations, same order — so at seed scale the two
    tables are *equal*, not merely close.
    """
    from repro.analysis.patterns import (AccessPatternTable, PatternCell,
                                         PATTERNS, USAGES)

    samples: dict[tuple[str, str], tuple[list[float], list[float]]] = {
        (u, p): ([], []) for u in USAGES for p in PATTERNS + ("usage",)}
    n_instances = 0
    for idx in sorted(sketch.machines):
        row = sketch.machines[idx]
        total_n = row["n_data"]
        total_b = row["bytes"]
        n_instances += total_n
        if total_n == 0:
            continue
        for usage in USAGES:
            cell = row["usage"][usage]
            usage_n = cell["n"]
            usage_b = cell["bytes"]
            acc, byt = samples[(usage, "usage")]
            acc.append(100.0 * usage_n / total_n)
            byt.append(100.0 * usage_b / total_b if total_b else 0.0)
            for pattern in PATTERNS:
                pat = cell["patterns"][pattern]
                acc, byt = samples[(usage, pattern)]
                acc.append(100.0 * pat["n"] / usage_n if usage_n else 0.0)
                byt.append(100.0 * pat["bytes"] / usage_b
                           if usage_b else 0.0)
    cells = {}
    for key, (acc, byt) in samples.items():
        a = np.asarray(acc) if acc else np.array([0.0])
        b = np.asarray(byt) if byt else np.array([0.0])
        cells[key] = PatternCell(
            accesses_mean=float(a.mean()), accesses_min=float(a.min()),
            accesses_max=float(a.max()),
            bytes_mean=float(b.mean()), bytes_min=float(b.min()),
            bytes_max=float(b.max()))
    return AccessPatternTable(cells=cells, n_instances=n_instances)


def _latency_band_cdf(hist: LatencyHistogram
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Figure 13 bands from the exact log₂ histogram buckets."""
    if not hist.count:
        return np.array([]), np.array([])
    max_micros = hist.max_ticks / TICKS_PER_MICROSECOND
    xs: list[float] = []
    ps: list[float] = []
    cum = 0
    for idx, n in enumerate(hist.bucket_counts):
        if n == 0:
            continue
        cum += n
        upper = (float(BUCKET_EDGES_MICROS[idx]) if idx < N_BUCKETS
                 else max_micros)
        xs.append(min(upper, max_micros))
        ps.append(cum / hist.count)
    return np.asarray(xs), np.asarray(ps)


def _burstiness_series(sketch: StatsSketch,
                       rng: np.random.Generator) -> Optional[dict]:
    """Figure 8 off the sparse burst bins: trace index of dispersion at
    1×/10×/100× the base bin width vs a rate-matched Poisson synthesis."""
    from repro.stats.poisson import (aggregate_counts, index_of_dispersion,
                                     synthesize_poisson_arrivals)

    n_creates = sum(sketch.bursts.values())
    if n_creates < 100 or not sketch.bursts:
        return None
    base_seconds = sketch.burst_bin_ticks / TICKS_PER_SECOND
    n_base = max(sketch.bursts) + 1
    duration = n_base * base_seconds
    factors = tuple(f for f in (1, 10, 100)
                    if n_base / f >= 8)
    if not factors:
        return None
    synth = synthesize_poisson_arrivals(n_creates / duration, duration,
                                        rng)
    intervals: list[float] = []
    trace_iods: list[float] = []
    poisson_iods: list[float] = []
    for factor in factors:
        counts = [0] * ((n_base + factor - 1) // factor)
        for b, n in sketch.bursts.items():
            counts[b // factor] += n
        interval = factor * base_seconds
        intervals.append(interval)
        trace_iods.append(index_of_dispersion(counts))
        poisson_iods.append(index_of_dispersion(
            aggregate_counts(synth, interval, duration)))
    return {
        "trace_iod": (np.asarray(intervals), np.asarray(trace_iods)),
        "poisson_iod": (np.asarray(intervals), np.asarray(poisson_iods)),
    }


def streaming_figure_series(sketch: StatsSketch,
                            rng: Optional[np.random.Generator] = None
                            ) -> dict[str, dict[str, tuple]]:
    """Every paper figure as plain (x, y) series, off the sketch alone.

    Same figure keys and axis units as
    :func:`~repro.analysis.figures.figure_series`; CDF x positions come
    from digest bucket edges (≤ 1/8 relative error) while counts,
    weights and the figure 13 histogram buckets are exact.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    figures: dict[str, dict[str, tuple]] = {}

    figures["fig01_run_length_by_files"] = {
        "read_runs": sketch.runs_files["read"].cdf_points(),
        "write_runs": sketch.runs_files["write"].cdf_points(),
    }
    figures["fig02_run_length_by_bytes"] = {
        "read_runs": sketch.runs_bytes["read"].cdf_points(),
        "write_runs": sketch.runs_bytes["write"].cdf_points(),
    }
    figures["fig03_file_size_by_opens"] = {
        u: sketch.size_opens[u].cdf_points() for u in _USAGES
        if sketch.size_opens[u].n}
    figures["fig04_file_size_by_bytes"] = {
        u: sketch.size_bytes[u].cdf_points() for u in _USAGES
        if sketch.size_opens[u].n}

    fig5 = {"all": sketch.open_time["all"].cdf_points(
        scale=TICKS_PER_MILLISECOND)}
    if sketch.open_time["local"].n:
        fig5["local"] = sketch.open_time["local"].cdf_points(
            scale=TICKS_PER_MILLISECOND)
    if sketch.open_time["network"].n:
        fig5["network"] = sketch.open_time["network"].cdf_points(
            scale=TICKS_PER_MILLISECOND)
    figures["fig05_open_times"] = fig5

    figures["fig06_new_file_lifetimes"] = {
        m: sketch.lifetime[m].cdf_points(scale=TICKS_PER_SECOND)
        for m in _METHODS if sketch.lifetime[m].n}
    sample = sketch.death_sample
    figures["fig07_size_vs_lifetime"] = {
        "scatter": (np.asarray([s for _lt, s in sample], dtype=float),
                    np.asarray([lt for lt, _s in sample], dtype=float)
                    / TICKS_PER_SECOND)}

    figures["fig11_open_interarrival"] = {
        purpose: sketch.interarrival[purpose].cdf_points(
            scale=TICKS_PER_MILLISECOND)
        for purpose in ("all", "data", "control")}
    figures["fig12_session_lifetime"] = {
        population: sketch.session[population].cdf_points(
            scale=TICKS_PER_MILLISECOND)
        for population in ("all", "data", "control")}
    figures["fig10_llcd"] = {
        "open_interarrival": sketch.interarrival["all"].llcd_points()}
    bursts = _burstiness_series(sketch, rng)
    if bursts is not None:
        figures["fig08_burstiness"] = bursts

    figures["fig13_latency"] = {
        rt: _latency_band_cdf(sketch.latency[rt]) for rt in REQUEST_TYPES
        if sketch.latency[rt].count}
    figures["fig14_request_size"] = {
        rt: sketch.req_size[rt].cdf_points() for rt in REQUEST_TYPES
        if sketch.req_size[rt].n}
    return figures


def format_streaming_report(sketch: StatsSketch,
                            duration_ticks: Optional[int] = None) -> str:
    """The campaign report: summary, category table, table 3, latency
    bands — everything off the sketch."""
    from repro.analysis.categories import format_category_table

    lines = [
        f"Streaming study sketch: {sketch.n_machines} machines, "
        f"{sketch.n_records:,} records, {sketch.n_instances:,} instances",
        f"  span: {max(sketch.t_max, 0) / TICKS_PER_SECOND:.1f} s   "
        f"bytes read {sketch.record_bytes_read:,}   "
        f"written {sketch.record_bytes_written:,}",
    ]
    deaths = sum(sketch.lifetime[m].n for m in _METHODS)
    created = sum(row["n_created"] for row in sketch.machines.values())
    if created:
        lines.append(f"  new files: {created:,} created, "
                     f"{deaths:,} died in trace")
    profiles = streaming_category_profiles(sketch, duration_ticks)
    if profiles:
        lines.append("")
        lines.append("Per-category (streaming):")
        lines.append(format_category_table(profiles))
    lines.append("")
    lines.append("Access patterns (table 3, streaming):")
    lines.append(streaming_pattern_table(sketch).format())
    lines.append("")
    lines.append("Latency bands (figure 13, exact log2 buckets):")
    lines.append("%-14s %10s %12s %12s %12s" % (
        "request type", "n", "p50 us", "p90 us", "max us"))
    for rt in REQUEST_TYPES:
        hist = sketch.latency[rt]
        if not hist.count:
            continue
        lines.append(
            f"{rt:<14} {hist.count:10,d} "
            f"{hist.quantile_micros(0.5):12.1f} "
            f"{hist.quantile_micros(0.9):12.1f} "
            f"{hist.max_ticks / TICKS_PER_MICROSECOND:12.1f}")
    return "\n".join(lines)
