"""Induced-I/O attribution from the causal span log.

The paper had to *infer* which trace records were induced — tagging the
VM manager's PagingIO duplicates (§3.3) and estimating the cache
manager's read-ahead and lazy-write shares from event patterns (§9).
With causal spans (:mod:`repro.nt.tracing.spans`) the simulator records
the provenance directly, so this module can state the §9–10 breakdown
exactly rather than estimate it:

* :func:`attribution_table` — the share of operations and bytes each
  cause (user, read-ahead, lazy writer, paging, redirector) contributed.
* :func:`reconcile_attribution` — the accounting check: per event kind,
  the recorded-span counts and byte totals must equal the trace store's
  record counts and byte totals *exactly*.  A non-empty result means the
  span instrumentation lost or duplicated work.
* :func:`critical_path_table` — latency decomposition of the read/write
  data path: how much of a request's completion time was spent in
  synchronous induced work (cache-miss fault-ins, wire time) versus the
  request itself, and how much induced work was overlapped (background,
  forked-clock) and therefore off the critical path.  The FastIO rows
  land in the 1–100 µs band and the IRP rows above it, matching the
  figure 13/14 latency split.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.nt.tracing.records import TraceEventKind
from repro.nt.tracing.spans import (
    SPAN_BACKGROUND,
    SpanCause,
    SpanRecord,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nt.tracing.collector import TraceCollector

# 100 ns simulator ticks.
_TICKS_PER_MICROSECOND = 10

# The data-path kinds the critical-path decomposition reports on.
DATA_PATH_KINDS: tuple[TraceEventKind, ...] = (
    TraceEventKind.IRP_READ,
    TraceEventKind.IRP_WRITE,
    TraceEventKind.FASTIO_READ,
    TraceEventKind.FASTIO_WRITE,
)


# --------------------------------------------------------------------- #
# Cause attribution (§9–10 induced-traffic breakdown).


@dataclass
class CauseRow:
    """One cause's share of the recorded operation stream."""

    cause: SpanCause
    ops: int = 0
    nbytes: int = 0

    def share_of(self, total_ops: int, total_bytes: int) -> tuple[float, float]:
        return (self.ops / total_ops if total_ops else 0.0,
                self.nbytes / total_bytes if total_bytes else 0.0)


@dataclass
class AttributionTable:
    """The exact induced-I/O breakdown over every recorded span."""

    rows: dict[SpanCause, CauseRow] = field(default_factory=dict)
    n_machines: int = 0

    @property
    def total_ops(self) -> int:
        return sum(row.ops for row in self.rows.values())

    @property
    def total_bytes(self) -> int:
        return sum(row.nbytes for row in self.rows.values())

    @property
    def induced_op_share(self) -> float:
        """Fraction of recorded operations some kernel component induced."""
        total = self.total_ops
        if not total:
            return 0.0
        return 1.0 - self.rows[SpanCause.USER].ops / total

    def to_dict(self) -> dict:
        total_ops, total_bytes = self.total_ops, self.total_bytes
        causes = {}
        for cause in SpanCause:
            row = self.rows[cause]
            op_share, byte_share = row.share_of(total_ops, total_bytes)
            causes[cause.name.lower()] = {
                "ops": row.ops, "bytes": row.nbytes,
                "op_share": op_share, "byte_share": byte_share,
            }
        return {
            "format": "nt-span-attribution-1",
            "n_machines": self.n_machines,
            "total_ops": total_ops,
            "total_bytes": total_bytes,
            "induced_op_share": self.induced_op_share,
            "causes": causes,
        }

    def format(self) -> str:
        """Render as an operator-facing text table."""
        title = "Induced-I/O attribution (causal spans)"
        lines = [title, "=" * len(title)]
        total_ops, total_bytes = self.total_ops, self.total_bytes
        lines.append(f"  machines: {self.n_machines}   "
                     f"recorded ops: {total_ops:,}   "
                     f"bytes: {total_bytes:,}")
        lines.append(f"  {'cause':<12} {'ops':>12} {'op share':>9} "
                     f"{'bytes':>16} {'byte share':>11}")
        for cause in SpanCause:
            row = self.rows[cause]
            op_share, byte_share = row.share_of(total_ops, total_bytes)
            lines.append(f"  {cause.name.lower():<12} {row.ops:>12,} "
                         f"{op_share:>8.1%} {row.nbytes:>16,} "
                         f"{byte_share:>10.1%}")
        lines.append(f"  induced share of operations: "
                     f"{self.induced_op_share:.1%}")
        return "\n".join(lines)


def attribution_table(collectors: Sequence["TraceCollector"]
                      ) -> AttributionTable:
    """Attribute every recorded operation to its cause.

    Counts only spans that carry :data:`~repro.nt.tracing.spans.\
SPAN_RECORDED` — each such span corresponds to exactly one trace record
    (stamped by ``mark_recorded`` from the record itself), which is what
    lets :func:`reconcile_attribution` hold exactly.
    """
    table = AttributionTable(
        rows={cause: CauseRow(cause) for cause in SpanCause},
        n_machines=len(collectors))
    for collector in collectors:
        for span in collector.span_records:
            if not span.recorded:
                continue
            row = table.rows[SpanCause(span.cause)]
            row.ops += 1
            row.nbytes += span.nbytes
    return table


# --------------------------------------------------------------------- #
# Exact reconciliation against the trace store.


def reconcile_attribution(collector: "TraceCollector") -> dict[str, dict]:
    """Per-kind mismatches between recorded spans and trace records.

    For every event kind, the number of recorded spans with that ``op``
    and their byte total must equal the number of trace records of that
    kind and their byte total.  Returns ``{}`` when the accounting is
    exact; otherwise a ``{kind_name: {"records": (n, bytes),
    "spans": (n, bytes)}}`` mapping naming each discrepancy.
    """
    record_counts: Counter = Counter()
    record_bytes: Counter = Counter()
    for rec in collector.records:
        record_counts[rec.kind] += 1
        record_bytes[rec.kind] += rec.length
    span_counts: Counter = Counter()
    span_bytes: Counter = Counter()
    for span in collector.span_records:
        if span.recorded:
            span_counts[span.op] += 1
            span_bytes[span.op] += span.nbytes
    problems: dict[str, dict] = {}
    for kind in sorted(set(record_counts) | set(span_counts)):
        recs = (record_counts.get(kind, 0), record_bytes.get(kind, 0))
        spans = (span_counts.get(kind, 0), span_bytes.get(kind, 0))
        if recs != spans:
            problems[TraceEventKind(kind).name] = {
                "records": recs, "spans": spans}
    return problems


# --------------------------------------------------------------------- #
# Critical-path latency decomposition (figures 13–14 cross-check).


@dataclass
class PathRow:
    """Aggregated latency decomposition for one data-path kind."""

    kind: TraceEventKind
    n: int = 0
    total_ticks: int = 0        # root begin-to-end time
    sync_ticks: int = 0         # direct synchronous children (on-path)
    overlapped_ticks: int = 0   # background children (off-path)
    # Storage-device service time anywhere under the root (activity-id
    # attribution).  These are "of which" columns — device time inside a
    # synchronous fault-in is already part of sync_ticks; the split here
    # shows how much of the path latency the device itself accounts for,
    # which is what moves when a whatif sweep swaps personalities.
    device_ticks: int = 0            # under synchronous ancestors
    device_overlapped_ticks: int = 0  # under a background ancestor

    @property
    def self_ticks(self) -> int:
        """Time in the request itself, induced work subtracted."""
        return self.total_ticks - self.sync_ticks

    def _mean_micros(self, ticks: int) -> float:
        if not self.n:
            return 0.0
        return ticks / self.n / _TICKS_PER_MICROSECOND

    @property
    def mean_total_micros(self) -> float:
        return self._mean_micros(self.total_ticks)

    @property
    def mean_sync_micros(self) -> float:
        return self._mean_micros(self.sync_ticks)

    @property
    def mean_self_micros(self) -> float:
        return self._mean_micros(self.self_ticks)

    @property
    def mean_overlapped_micros(self) -> float:
        return self._mean_micros(self.overlapped_ticks)

    @property
    def mean_device_micros(self) -> float:
        return self._mean_micros(self.device_ticks)

    @property
    def mean_device_overlapped_micros(self) -> float:
        return self._mean_micros(self.device_overlapped_ticks)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind.name,
            "n": self.n,
            "mean_total_micros": self.mean_total_micros,
            "mean_sync_child_micros": self.mean_sync_micros,
            "mean_self_micros": self.mean_self_micros,
            "mean_overlapped_micros": self.mean_overlapped_micros,
            "mean_device_micros": self.mean_device_micros,
            "mean_device_overlapped_micros":
                self.mean_device_overlapped_micros,
        }


@dataclass
class CriticalPathTable:
    """Latency decomposition of the root read/write requests."""

    rows: dict[TraceEventKind, PathRow] = field(default_factory=dict)
    n_machines: int = 0

    def to_dict(self) -> dict:
        return {
            "format": "nt-span-critical-path-1",
            "n_machines": self.n_machines,
            "kinds": [self.rows[kind].to_dict()
                      for kind in DATA_PATH_KINDS],
        }

    def format(self) -> str:
        title = "Critical-path decomposition (root read/write requests)"
        lines = [title, "=" * len(title)]
        lines.append(f"  {'kind':<14} {'n':>10} {'total µs':>10} "
                     f"{'induced µs':>11} {'self µs':>9} {'overlap µs':>11} "
                     f"{'device µs':>10}")
        for kind in DATA_PATH_KINDS:
            row = self.rows[kind]
            lines.append(f"  {kind.name:<14} {row.n:>10,} "
                         f"{row.mean_total_micros:>10.1f} "
                         f"{row.mean_sync_micros:>11.1f} "
                         f"{row.mean_self_micros:>9.1f} "
                         f"{row.mean_overlapped_micros:>11.1f} "
                         f"{row.mean_device_micros:>10.1f}")
        return "\n".join(lines)


def _decompose_machine(spans: Iterable[SpanRecord],
                       rows: dict[TraceEventKind, PathRow]) -> None:
    spans = list(spans)
    wanted = {int(kind) for kind in DATA_PATH_KINDS}
    by_id = {span.span_id: span for span in spans}
    roots: dict[int, PathRow] = {}
    for span in spans:
        if span.is_root and span.op in wanted and span.recorded:
            roots[span.span_id] = rows[TraceEventKind(span.op)]
    for span in spans:
        if span.is_root:
            row = roots.get(span.span_id)
            if row is not None:
                row.n += 1
                row.total_ticks += span.duration
            continue
        # Direct children of an interesting root: background work ran on
        # a forked clock (overlapped, off the critical path); everything
        # else advanced the root's own clock (on-path induced time).
        row = roots.get(span.parent_id)
        if row is None:
            continue
        if span.flags & SPAN_BACKGROUND:
            row.overlapped_ticks += span.duration
        else:
            row.sync_ticks += span.duration
    # Storage-device spans sit at arbitrary depth (directly under a NIB
    # root, or under MM annotations and paging IRPs); attribute them to
    # their activity root, splitting on whether any ancestor ran on a
    # forked clock.
    for span in spans:
        if span.cause != int(SpanCause.DEVICE):
            continue
        row = roots.get(span.activity_id)
        if row is None:
            continue
        background = False
        cursor = span
        while cursor.parent_id != 0:
            parent = by_id.get(cursor.parent_id)
            if parent is None:
                break
            if parent.flags & SPAN_BACKGROUND:
                background = True
                break
            cursor = parent
        if background:
            row.device_overlapped_ticks += span.duration
        else:
            row.device_ticks += span.duration


def critical_path_table(collectors: Sequence["TraceCollector"]
                        ) -> CriticalPathTable:
    """Decompose root read/write latency into self, induced and
    overlapped time across a study's span logs."""
    table = CriticalPathTable(
        rows={kind: PathRow(kind) for kind in DATA_PATH_KINDS},
        n_machines=len(collectors))
    for collector in collectors:
        _decompose_machine(collector.span_records, table.rows)
    return table
