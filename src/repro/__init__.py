"""Reproduction of "File system usage in Windows NT 4.0" (Vogels, SOSP'99).

Three layers:

* :mod:`repro.nt` — a simulated Windows NT 4.0 I/O subsystem (I/O manager,
  IRP and FastIO paths, cache manager with read-ahead and lazy writing, VM
  manager with paging and image loading, FAT/NTFS volumes, a CIFS-style
  redirector, and the trace filter driver the paper's methodology rests on).
* :mod:`repro.workload` — synthetic file-system content and heavy-tailed
  application/user behaviour standing in for the paper's 45 production
  machines.
* :mod:`repro.analysis` + :mod:`repro.stats` — the paper's measurement
  pipeline: the two-fact-table warehouse, the per-section analyses, and the
  heavy-tail statistics toolbox.

Quickstart::

    from repro import StudyConfig, run_study, TraceWarehouse
    from repro.analysis import summarize_observations

    result = run_study(StudyConfig(n_machines=4, duration_seconds=120))
    wh = TraceWarehouse.from_study(result)
    print(summarize_observations(wh, result.counters).format())
"""

from repro.nt.perf import PerfRegistry
from repro.nt.system import Machine, MachineConfig
from repro.workload.study import (StudyConfig, StudyError, StudyResult,
                                  StudyTelemetry, run_study)
from repro.replay import (ReplayConfig, ReplayResult, replay_archive,
                          replay_collector)
from repro.analysis.warehouse import TraceWarehouse

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "MachineConfig",
    "PerfRegistry",
    "ReplayConfig",
    "ReplayResult",
    "StudyConfig",
    "StudyError",
    "StudyResult",
    "StudyTelemetry",
    "replay_archive",
    "replay_collector",
    "run_study",
    "TraceWarehouse",
    "__version__",
]
