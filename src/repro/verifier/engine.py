"""The verifier engine: file collection, parsing, and rule dispatch.

The engine walks the requested paths, parses every ``.py`` file with the
stdlib :mod:`ast` module, derives each file's dotted module name from
its package structure (walking up through ``__init__.py`` files), and
hands the resulting :class:`ModuleInfo` set to two kinds of rules:

* **module rules** run once per file (determinism, protocol, layering);
* **tree rules** run once over the whole module set (the exhaustiveness
  cross-checks, which relate enum definitions in one file to handler
  tables in another).

Rules yield :class:`~repro.verifier.findings.Finding` objects; the
engine sorts them and applies the suppression baseline.  The engine
itself never prints — the CLI owns presentation and exit codes.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Sequence

from repro.verifier.baseline import Suppression, apply_baseline
from repro.verifier.findings import Finding


@dataclass
class ModuleInfo:
    """One parsed source file plus the context rules need."""

    path: Path          # on-disk location
    display_path: str   # forward-slash path used in findings
    name: str           # dotted module name, e.g. "repro.nt.io.irp"
    tree: ast.Module
    source: str

    def lines(self) -> List[str]:
        return self.source.splitlines()


@dataclass
class ModuleIndex:
    """The full module set a verifier run sees, keyed by dotted name."""

    modules: List[ModuleInfo]
    by_name: Dict[str, ModuleInfo] = field(init=False)

    def __post_init__(self) -> None:
        self.by_name = {m.name: m for m in self.modules}

    def get(self, name: str) -> "ModuleInfo | None":
        return self.by_name.get(name)


ModuleRule = Callable[[ModuleInfo], Iterable[Finding]]
TreeRule = Callable[[ModuleIndex], Iterable[Finding]]


def module_name_for(path: Path) -> str:
    """Dotted module name derived from the ``__init__.py`` chain.

    ``src/repro/nt/io/irp.py`` → ``repro.nt.io.irp``; a file outside any
    package is just its stem.
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    package = path.parent
    while (package / "__init__.py").exists():
        parts.insert(0, package.name)
        package = package.parent
    return ".".join(parts) if parts else path.stem


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand paths to the sorted list of ``.py`` files underneath.

    Raises :class:`FileNotFoundError` for a path that does not exist and
    :class:`ValueError` for a directory containing no Python files, so a
    typo'd path can never produce a silently-clean run.
    """
    files: List[Path] = []
    for path in paths:
        if not path.exists():
            raise FileNotFoundError(
                f"verify path {path} does not exist")
        if path.is_dir():
            found = [p for p in sorted(path.rglob("*.py")) if p.is_file()]
            if not found:
                raise ValueError(
                    f"verify path {path} contains no Python files")
            files.extend(found)
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise ValueError(
                f"verify path {path} is not a Python file or directory")
    # De-duplicate while keeping the sorted-per-argument order stable.
    seen = {}
    for f in files:
        seen.setdefault(f.resolve(), f)
    return list(seen.values())


def load_modules(files: Sequence[Path], root: "Path | None" = None,
                 ) -> ModuleIndex:
    """Parse files into a :class:`ModuleIndex`.

    ``root`` anchors the display paths (defaults to the current working
    directory; files outside it fall back to absolute paths).
    """
    base = (root or Path.cwd()).resolve()
    modules: List[ModuleInfo] = []
    for file in files:
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            raise ValueError(f"verify cannot parse {file}: {exc}") from exc
        resolved = file.resolve()
        try:
            display = resolved.relative_to(base).as_posix()
        except ValueError:
            display = resolved.as_posix()
        modules.append(ModuleInfo(
            path=file, display_path=display,
            name=module_name_for(file), tree=tree, source=source))
    return ModuleIndex(modules=modules)


@dataclass
class VerifyContext:
    """Run-scoped state shared between the engine and context-aware rules.

    ``cache_path`` points the flow rules at their content-hash summary
    cache; ``cache_stats`` is filled in by the flow rule when a cache is
    in play.  ``timings`` maps rule function name to wall seconds spent
    — host-side telemetry only, never part of findings.
    """

    cache_path: "Path | None" = None
    cache_stats: object = None
    timings: Dict[str, float] = field(default_factory=dict)


def run_rules(index: ModuleIndex,
              module_rules: Sequence[ModuleRule],
              tree_rules: Sequence[TreeRule],
              context: "VerifyContext | None" = None) -> List[Finding]:
    """Run every rule over the index and return sorted findings.

    Rules carrying a truthy ``wants_context`` attribute are called with
    ``(index, context)``; every other rule keeps the plain signature.
    Per-rule wall time accumulates into ``context.timings``.
    """
    findings: List[Finding] = []
    timings = context.timings if context is not None else {}
    for rule in module_rules:
        started = time.perf_counter()
        for module in index.modules:
            findings.extend(rule(module))
        timings[rule.__name__] = (timings.get(rule.__name__, 0.0)
                                  + time.perf_counter() - started)
    for rule in tree_rules:
        started = time.perf_counter()
        if getattr(rule, "wants_context", False):
            findings.extend(rule(index, context))
        else:
            findings.extend(rule(index))
        timings[rule.__name__] = (timings.get(rule.__name__, 0.0)
                                  + time.perf_counter() - started)
    return sorted(set(findings))


@dataclass
class VerifyReport:
    """Outcome of one verifier run, before presentation."""

    findings: List[Finding]        # unsuppressed — these fail the run
    suppressed: List[Finding]      # covered by the baseline
    stale: List[Suppression]       # baseline entries that covered nothing
    n_files: int
    timings: Dict[str, float] = field(default_factory=dict)
    cache_stats: object = None     # astcache.CacheStats when caching

    @property
    def clean(self) -> bool:
        return not self.findings and not self.stale


def verify_paths(paths: Sequence[Path],
                 suppressions: "List[Suppression] | None" = None,
                 root: "Path | None" = None,
                 cache_path: "Path | None" = None) -> VerifyReport:
    """Collect, parse, and check ``paths`` against the full rule set."""
    from repro.verifier.rules import MODULE_RULES, TREE_RULES

    files = collect_files(paths)
    index = load_modules(files, root=root)
    context = VerifyContext(cache_path=cache_path)
    findings = run_rules(index, MODULE_RULES, TREE_RULES, context)
    kept, quieted, stale = apply_baseline(findings, suppressions or [])
    return VerifyReport(findings=kept, suppressed=quieted, stale=stale,
                        n_files=len(files), timings=context.timings,
                        cache_stats=context.cache_stats)
