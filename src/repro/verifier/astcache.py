"""Content-hash cache for per-module flow summaries.

Interprocedural analysis is the only verifier pass whose cost grows with
the whole program rather than one file, so it is the only pass worth
caching.  The cache stores, per module, the *facts* the flow rules
extract (call edges, determinism sources, identity-flow facts, unit
findings) — never the findings themselves, because findings depend on
every other module's facts.  Global propagation (taint fixpoints, SCC
condensation) is cheap and reruns on every verify.

Soundness: a per-module summary depends on the module's own source
*and* on the project interface it resolves calls against (function
signatures, class bases, method sets, import aliases).  Each entry is
therefore keyed by the pair ``(file_sha, symbols_sha)`` where
``symbols_sha`` digests the whole-project interface.  Editing a function
body invalidates only that file; editing any signature or class shape
invalidates everything — conservative, but never wrong.

The cache file is plain JSON, safe to delete at any time, and versioned
so rule changes start from scratch instead of replaying stale facts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from repro.verifier.symbols import SymbolTable

# Bump whenever the shape of cached facts or the extraction rules
# change; old caches are then ignored wholesale.
CACHE_VERSION = 1


@dataclass
class CacheStats:
    """Hit/miss accounting for one verify run."""

    hits: int = 0
    misses: int = 0
    loaded: bool = False  # a cache file existed and was readable

    @property
    def total(self) -> int:
        return self.hits + self.misses


def file_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def symbols_digest(table: SymbolTable) -> str:
    """Digest of the project interface cross-module facts depend on.

    Function bodies are deliberately excluded: a body edit must not
    invalidate *other* modules' summaries, only its own (via
    ``file_digest``).
    """
    doc = {
        "functions": {
            qual: [fn.module, fn.class_qualname, fn.params,
                   sorted(fn.annotations.items())]
            for qual, fn in sorted(table.functions.items())},
        "classes": {
            qual: [cls.module, cls.base_names, cls.decorators,
                   sorted(cls.methods), cls.defines_hash,
                   cls.defines_eq, sorted(cls.attr_classes.items())]
            for qual, cls in sorted(table.classes.items())},
        "aliases": {
            mod: sorted(aliases.items())
            for mod, aliases in sorted(table.aliases.items())},
    }
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class FlowCache:
    """Per-module summary store keyed by ``(file_sha, symbols_sha)``."""

    path: Optional[Path] = None
    entries: Dict[str, dict] = field(default_factory=dict)
    stats: CacheStats = field(default_factory=CacheStats)
    _dirty: bool = False

    @classmethod
    def load(cls, path: Optional[Path]) -> "FlowCache":
        cache = cls(path=path)
        if path is None or not path.exists():
            return cache
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache  # unreadable cache == no cache
        if doc.get("version") != CACHE_VERSION:
            return cache
        entries = doc.get("modules")
        if isinstance(entries, dict):
            cache.entries = entries
            cache.stats.loaded = True
        return cache

    def get(self, module_name: str, file_sha: str,
            symbols_sha: str) -> Optional[dict]:
        entry = self.entries.get(module_name)
        if (entry is not None and entry.get("file_sha") == file_sha
                and entry.get("symbols_sha") == symbols_sha):
            self.stats.hits += 1
            return entry["summary"]
        self.stats.misses += 1
        return None

    def put(self, module_name: str, file_sha: str, symbols_sha: str,
            summary: dict) -> None:
        self.entries[module_name] = {
            "file_sha": file_sha,
            "symbols_sha": symbols_sha,
            "summary": summary,
        }
        self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        doc = {"version": CACHE_VERSION, "modules": self.entries}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n",
            encoding="utf-8")
