"""Small AST helpers shared by the verifier rules (stdlib ``ast`` only)."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local binding → fully-qualified name for module-level imports.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from time import time`` → ``{"time": "time.time"}``;
    ``from numpy import random as npr`` → ``{"npr": "numpy.random"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[bound] = target
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                aliases[bound] = f"{node.module}.{alias.name}"
    return aliases


def resolve_call_name(func: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Qualified name of a called object, resolved through import aliases."""
    name = dotted_name(func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    head = aliases.get(head, head)
    return f"{head}.{rest}" if rest else head


def parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Child → parent for every node in ``tree``."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def enum_member_names(tree: ast.Module, class_name: str) -> Set[str]:
    """Uppercase member names assigned in the class body of ``class_name``."""
    members: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            for stmt in node.body:
                targets: List[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets = [stmt.target]
                for target in targets:
                    if isinstance(target, ast.Name) and target.id.isupper():
                        members.add(target.id)
    return members


def find_assignment(tree: ast.Module, name: str) -> Optional[ast.expr]:
    """The value expression assigned to module/class-level ``name``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name) and node.target.id == name:
                return node.value
    return None


def attribute_refs(tree: ast.AST, base: str,
                   skip_class_body: Optional[str] = None) -> Set[str]:
    """Attribute names referenced as ``base.X`` anywhere in ``tree``.

    ``skip_class_body`` excludes references inside that class definition
    (so an enum's own body does not count as a use of its members).
    """
    refs: Set[str] = set()
    skipped: Set[ast.AST] = set()
    if skip_class_body is not None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == skip_class_body:
                skipped.update(ast.walk(node))
    for node in ast.walk(tree):
        if node in skipped:
            continue
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == base):
            refs.add(node.attr)
    return refs


def _is_type_checking_test(test: ast.expr) -> bool:
    name = dotted_name(test)
    return name in ("TYPE_CHECKING", "typing.TYPE_CHECKING")


def iter_imports(tree: ast.Module) -> Iterator[Tuple[ast.stmt, str, bool]]:
    """Yield ``(node, imported_module, in_type_checking)`` for every import.

    For ``from pkg import name`` the imported module is ``pkg`` (the
    bound names may be submodules or attributes; rules that care resolve
    further).  Imports nested inside functions are included — a
    function-level import is still a runtime dependency.
    """
    def visit(stmts: List[ast.stmt], guarded: bool) -> Iterator[
            Tuple[ast.stmt, str, bool]]:
        for stmt in stmts:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    yield stmt, alias.name, guarded
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.module and not stmt.level:
                    yield stmt, stmt.module, guarded
            elif isinstance(stmt, ast.If):
                inner = guarded or _is_type_checking_test(stmt.test)
                yield from visit(stmt.body, inner)
                yield from visit(stmt.orelse, guarded)
            else:
                for field in ("body", "orelse", "finalbody", "handlers"):
                    value = getattr(stmt, field, None)
                    if not value:
                        continue
                    if field == "handlers":
                        for handler in value:
                            yield from visit(handler.body, guarded)
                    else:
                        yield from visit(value, guarded)

    yield from visit(tree.body, False)
