"""P-rules: the IRP completion protocol.

NT's Driver Verifier enforces that a driver completes each IRP exactly
once or passes it down the stack — never both, never twice, never
neither.  The static version checks every *handler* in ``repro.nt``: a
function with a parameter named ``irp`` and an ``NtStatus`` return
annotation.  Along every control-flow path the handler must transfer
completion responsibility exactly once, where a transfer is:

* ``irp.complete(...)`` — the handler completes the packet;
* a forwarding call (``forward_irp``/``send_irp``/``dispatch``/
  ``_dispatch``/``_dispatch_background``) that passes ``irp``;
* a call to another handler *in the same module* (itself taking ``irp``
  and returning ``NtStatus``) that passes ``irp`` — delegation.

Any other call that receives ``irp`` is an observer (tracing, perf,
verifier hooks) and does not transfer responsibility.  Paths that
``raise`` are exempt — an exception is a simulator bug, not an I/O
completion path.

* **P301** — a path returns with the IRP neither completed nor
  forwarded (the packet leaks).
* **P302** — a path may complete/forward more than once
  (double-completion / use-after-complete).

The analysis is a conservative abstract interpretation over completion
counts {0, 1, 2+}; events inside loops are applied once (optimistic),
which the runtime Driver-Verifier mode backstops against live traffic.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.verifier.engine import ModuleInfo
from repro.verifier.findings import Finding

_FORWARD_NAMES = {
    "forward_irp", "send_irp", "dispatch",
    "_dispatch", "_dispatch_background",
}

# Builtins that may receive ``irp`` without taking responsibility for it.
_BUILTIN_OBSERVERS = {
    "isinstance", "issubclass", "len", "repr", "str", "bool", "int",
    "id", "hash", "print", "getattr", "setattr", "vars", "type", "Irp",
}

_MANY = 2  # saturating count: "two or more"


def _returns_ntstatus(func: ast.AST) -> bool:
    returns = getattr(func, "returns", None)
    if returns is None:
        return False
    if isinstance(returns, ast.Name):
        return returns.id == "NtStatus"
    if isinstance(returns, ast.Constant) and isinstance(returns.value, str):
        return returns.value.strip() == "NtStatus"
    if isinstance(returns, ast.Attribute):
        return returns.attr == "NtStatus"
    return False


def _is_handler(func: ast.AST) -> bool:
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    args = func.args
    all_args = args.posonlyargs + args.args + args.kwonlyargs
    return any(a.arg == "irp" for a in all_args) and _returns_ntstatus(func)


def _passes_irp(call: ast.Call) -> bool:
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id == "irp":
            return True
    for kw in call.keywords:
        if isinstance(kw.value, ast.Name) and kw.value.id == "irp":
            return True
    return False


class _HandlerAnalysis:
    """Path-sensitive completion counting for one handler."""

    def __init__(self, module: ModuleInfo, func: ast.FunctionDef,
                 local_handlers: Set[str],
                 module_names: Set[str]) -> None:
        self.module = module
        self.func = func
        self.local_handlers = local_handlers
        self.module_names = module_names
        self.findings: List[Finding] = []
        self._reported: Set[Tuple[str, int]] = set()

    # -- events ------------------------------------------------------- #

    def _events_in(self, expr: ast.AST) -> int:
        """Completion-responsibility transfers inside one expression."""
        events = 0
        for node in ast.walk(expr):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "irp"
                    and func.attr == "complete"):
                events += 1
            elif _passes_irp(node):
                if isinstance(func, ast.Attribute):
                    # Method calls transfer responsibility only when they
                    # forward down the stack or invoke a local handler;
                    # anything else (tracing, perf, verifier hooks) is an
                    # observer.
                    if (func.attr in _FORWARD_NAMES
                            or func.attr in self.local_handlers):
                        events += 1
                elif isinstance(func, ast.Name):
                    # A bare-name call takes the packet when it invokes a
                    # local handler or a handler-table entry held in a
                    # *local* variable (``handler(self, irp, device)``).
                    # Names bound at module level — imported classifiers
                    # like ``kind_for_irp``, builtins — are observers
                    # unless they are handlers themselves.
                    if func.id in self.local_handlers:
                        events += 1
                    elif (func.id not in _BUILTIN_OBSERVERS
                          and func.id not in self.module_names):
                        events += 1
        return events

    def _apply(self, states: Set[int], expr: ast.AST) -> Set[int]:
        events = self._events_in(expr)
        if not events:
            return states
        return {min(s + events, _MANY) for s in states}

    # -- findings ----------------------------------------------------- #

    def _check_exit(self, states: Set[int], line: int, where: str) -> None:
        if 0 in states:
            self._report("P301", line,
                         f"a path {where} with the IRP neither completed "
                         "nor forwarded (packet leak)")
        if _MANY in states:
            self._report("P302", line,
                         f"a path {where} after completing/forwarding the "
                         "IRP more than once (use-after-complete)")

    def _report(self, rule: str, line: int, message: str) -> None:
        key = (rule, line)
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(Finding(
            self.module.display_path, line, rule,
            f"handler {self.func.name}: {message}"))

    # -- statement walk ----------------------------------------------- #

    def _walk(self, stmts: List[ast.stmt], states: Set[int]) -> Set[int]:
        """Walk statements; return the fall-through states (empty when
        every path returned or raised)."""
        for stmt in stmts:
            if not states:
                return states
            if isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    states = self._apply(states, stmt.value)
                self._check_exit(states, stmt.lineno, "returns")
                return set()
            if isinstance(stmt, ast.Raise):
                return set()
            if isinstance(stmt, ast.If):
                after_test = self._apply(states, stmt.test)
                taken = self._walk(stmt.body, set(after_test))
                skipped = self._walk(stmt.orelse, set(after_test))
                states = taken | skipped
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                entered = self._apply(states, stmt.iter)
                body = self._walk(stmt.body, set(entered))
                states = self._walk(stmt.orelse, entered | body)
            elif isinstance(stmt, ast.While):
                entered = self._apply(states, stmt.test)
                body = self._walk(stmt.body, set(entered))
                states = self._walk(stmt.orelse, entered | body)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    states = self._apply(states, item.context_expr)
                states = self._walk(stmt.body, states)
            elif isinstance(stmt, ast.Try):
                tried = self._walk(stmt.body, set(states))
                # An exception may fire at any point in the body, so a
                # handler can be entered from the pre-body states or any
                # post-body state (approximated by the fall-through set).
                handler_out: Set[int] = set()
                for handler in stmt.handlers:
                    handler_out |= self._walk(handler.body, states | tried)
                if stmt.orelse:
                    tried = self._walk(stmt.orelse, tried)
                out = tried | handler_out
                if stmt.finalbody:
                    out = self._walk(stmt.finalbody, out)
                states = out
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                continue  # nested definitions are separate scopes
            else:
                states = self._apply(states, stmt)
        return states

    def run(self) -> List[Finding]:
        fallthrough = self._walk(self.func.body, {0})
        if fallthrough:
            last = self.func.body[-1]
            self._check_exit(fallthrough, getattr(last, "lineno",
                                                  self.func.lineno),
                             "falls off the end")
        return self.findings


def _module_level_names(tree: ast.Module) -> Set[str]:
    """Names bound at module scope: imports, defs, assignments."""
    names: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                names.add(alias.asname or alias.name)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    return names


def check_protocol(module: ModuleInfo) -> Iterator[Finding]:
    """P-rules for one module (handlers in ``repro.nt`` only)."""
    if not module.name.startswith("repro.nt"):
        return
    handlers = [node for node in ast.walk(module.tree) if _is_handler(node)]
    local_names = {h.name for h in handlers}
    module_names = _module_level_names(module.tree)
    for handler in handlers:
        yield from _HandlerAnalysis(module, handler, local_names,
                                    module_names).run()
