"""U-rules: the unit lattice.

Every headline number this reproduction publishes is an exact integer
tick or byte count; the only floats allowed near the simulation are
ratios and host-side telemetry.  These rules run an abstract
interpretation over the unit lattice

    {ticks, bytes, wall_seconds, ratio, unknown}

seeded from the project's naming conventions (``*_ticks``, ``*_bytes``,
``*_seconds``, ``*_ratio``/``*_fraction``/``*_scale``, ``nbytes``, the
``TICKS_PER_*`` conversion constants and the ``X_from_Y`` conversion
functions in :mod:`repro.common.clock`) and propagated through
assignments, returns, and call arguments:

* **U801** — two *different* known quantities (ticks, bytes, seconds)
  meet in an additive operation or comparison, or a call passes a value
  of one known quantity into a parameter named for another, without an
  explicit conversion (multiplying or dividing by a conversion constant,
  or calling a ``ticks_from_*``/``*_from_ticks`` function).
* **U802** — a float-producing expression (true division, ``float()``,
  a float literal factor, a ``time.*`` read) flows into tick-valued
  state — a ``*_ticks`` assignment target, a tick-named parameter, or
  the return value of a ``*_ticks`` function — inside the
  exact-arithmetic layers (``repro.nt.storage``, ``repro.nt.cache``,
  ``repro.common.clock``).  Wrapping in ``int(...)``/``round(...)`` or
  going through a ``ticks_from_*`` conversion sanitizes.

Both rules are seeded by convention, so they are only as strong as the
project's naming discipline — which the review bar already enforces;
the rules make it machine-checked.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Tuple

from repro.verifier.astutil import resolve_call_name
from repro.verifier.callgraph import (
    GraphBuilder,
    _FunctionScope,
    _iter_scope_nodes,
    _resolve_target,
    is_external,
)
from repro.verifier.engine import ModuleInfo
from repro.verifier.findings import Finding

TICKS = "ticks"
BYTES = "bytes"
SECONDS = "wall_seconds"
RATIO = "ratio"
UNKNOWN = "unknown"

QUANTITIES = (TICKS, BYTES, SECONDS)

# The exact-arithmetic layers where float contamination of tick state
# is a correctness bug, not a style issue.
EXACT_MODULES = ("repro.nt.storage", "repro.nt.cache", "repro.common.clock")

_SUFFIX_UNITS = {
    "ticks": TICKS, "tick": TICKS,
    "bytes": BYTES,
    "seconds": SECONDS, "secs": SECONDS,
    "ratio": RATIO, "fraction": RATIO, "scale": RATIO,
}
_WHOLE_NAME_UNITS = {"nbytes": BYTES, "ticks": TICKS, "nticks": TICKS}

_CONVERSION_CONSTANT = re.compile(r"^TICKS_PER_[A-Z]+$")
_CONVERSION_FUNCTION = re.compile(r"^([a-z]+)_from_([a-z]+)$")
_SANITIZERS = {"int", "round"}
_TOKEN_FOR_UNIT = {"ticks": TICKS, "seconds": SECONDS, "secs": SECONDS,
                   "bytes": BYTES, "millis": UNKNOWN, "micros": UNKNOWN}


def unit_of_name(name: str) -> str:
    """Unit a bare identifier advertises through its suffix."""
    bare = name.rsplit(".", 1)[-1]
    if bare in _WHOLE_NAME_UNITS:
        return _WHOLE_NAME_UNITS[bare]
    token = bare.rsplit("_", 1)[-1].lower()
    return _SUFFIX_UNITS.get(token, UNKNOWN)


def return_unit_of_callee(name: str) -> str:
    """Unit a function's *name* promises for its return value."""
    bare = name.rsplit(".", 1)[-1]
    match = _CONVERSION_FUNCTION.match(bare)
    if match:
        return _TOKEN_FOR_UNIT.get(match.group(1), UNKNOWN)
    return unit_of_name(bare)


def is_conversion_call(name: Optional[str]) -> bool:
    return name is not None and bool(
        _CONVERSION_FUNCTION.match(name.rsplit(".", 1)[-1]))


class _UnitChecker:
    """Abstract interpretation of one function over the unit lattice."""

    def __init__(self, module: ModuleInfo, fn, builder: GraphBuilder,
                 findings: List[Finding]) -> None:
        self.module = module
        self.fn = fn
        self.builder = builder
        self.findings = findings
        self.aliases = builder.table.aliases.get(module.name, {})
        self.local_functions = builder.local_functions(module.name)
        self.scope = _FunctionScope(fn, builder.table)
        self.exact = module.name.startswith(EXACT_MODULES)
        self.env: Dict[str, str] = {}
        self.floaty: Dict[str, bool] = {}
        for param in fn.params:
            unit = unit_of_name(param)
            if unit != UNKNOWN:
                self.env[param] = unit

    # -- lattice ------------------------------------------------------ #

    def unit_of(self, expr: ast.expr) -> str:
        if isinstance(expr, ast.Name):
            if expr.id in self.env:
                return self.env[expr.id]
            if _CONVERSION_CONSTANT.match(expr.id):
                return UNKNOWN  # handled structurally in _binop_unit
            return unit_of_name(expr.id)
        if isinstance(expr, ast.Attribute):
            name = resolve_call_name(expr, self.aliases) or expr.attr
            if _CONVERSION_CONSTANT.match(name.rsplit(".", 1)[-1]):
                return UNKNOWN
            return unit_of_name(expr.attr)
        if isinstance(expr, ast.Call):
            name = resolve_call_name(expr.func, self.aliases)
            if name is not None:
                bare = name.rsplit(".", 1)[-1]
                if bare in _SANITIZERS and expr.args:
                    return self.unit_of(expr.args[0])
                return return_unit_of_callee(name)
            return UNKNOWN
        if isinstance(expr, ast.BinOp):
            return self._binop_unit(expr)
        if isinstance(expr, ast.UnaryOp):
            return self.unit_of(expr.operand)
        if isinstance(expr, ast.IfExp):
            then = self.unit_of(expr.body)
            return then if then != UNKNOWN else self.unit_of(expr.orelse)
        return UNKNOWN

    def _conversion_constant_name(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name) and _CONVERSION_CONSTANT.match(
                expr.id):
            return expr.id
        if isinstance(expr, ast.Attribute) and _CONVERSION_CONSTANT.match(
                expr.attr):
            return expr.attr
        return None

    def _binop_unit(self, expr: ast.BinOp) -> str:
        left = self.unit_of(expr.left)
        right = self.unit_of(expr.right)
        lconv = self._conversion_constant_name(expr.left)
        rconv = self._conversion_constant_name(expr.right)
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            self._check_mix(expr, left, right, "arithmetic")
            return left if left != UNKNOWN else right
        if isinstance(expr.op, ast.Mult):
            # seconds * TICKS_PER_SECOND -> ticks (explicit conversion).
            if lconv or rconv:
                return TICKS
            if left == RATIO:
                return right
            if right == RATIO:
                return left
            if left != UNKNOWN and right != UNKNOWN:
                return UNKNOWN  # u*u — squared quantity, out of lattice
            return left if left != UNKNOWN else right
        if isinstance(expr.op, (ast.Div, ast.FloorDiv)):
            if rconv:
                # ticks / TICKS_PER_SECOND -> the named denominator unit.
                token = rconv.rsplit("_", 1)[-1].lower() + "s"
                return _TOKEN_FOR_UNIT.get(token, UNKNOWN)
            if left != UNKNOWN and left == right:
                return RATIO
            if right == UNKNOWN:
                return left
            return UNKNOWN
        if isinstance(expr.op, ast.Mod):
            return left
        return UNKNOWN

    def _check_mix(self, node: ast.AST, left: str, right: str,
                   context: str) -> None:
        if (left in QUANTITIES and right in QUANTITIES
                and left != right):
            self.findings.append(Finding(
                self.module.display_path, node.lineno, "U801",
                f"{left} and {right} mixed in {context} without an "
                "explicit conversion constant "
                f"(in {self.fn.qualname})"))

    # -- float contamination ------------------------------------------ #

    def is_floaty(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Constant):
            return isinstance(expr.value, float)
        if isinstance(expr, ast.Name):
            return self.floaty.get(expr.id, False)
        if isinstance(expr, ast.BinOp):
            if isinstance(expr.op, ast.Div):
                return True
            if isinstance(expr.op, (ast.FloorDiv, ast.Mod)):
                return False
            return self.is_floaty(expr.left) or self.is_floaty(expr.right)
        if isinstance(expr, ast.UnaryOp):
            return self.is_floaty(expr.operand)
        if isinstance(expr, ast.IfExp):
            return self.is_floaty(expr.body) or self.is_floaty(expr.orelse)
        if isinstance(expr, ast.Call):
            name = resolve_call_name(expr.func, self.aliases)
            if name is None:
                return False
            bare = name.rsplit(".", 1)[-1]
            if bare in _SANITIZERS or bare in ("floor", "ceil", "len"):
                return False
            if is_conversion_call(name):
                # X_from_Y conversions to ticks return exact ints.
                return return_unit_of_callee(name) != TICKS
            if bare == "float" or name.startswith("time."):
                return True
            if bare in ("min", "max") and expr.args:
                return any(self.is_floaty(a) for a in expr.args)
            return False
        return False

    # -- walk ---------------------------------------------------------- #

    def run(self) -> None:
        if self.fn.node is None:
            return
        nodes = list(_iter_scope_nodes(self.fn.node))
        for _ in range(2):
            for node in nodes:
                if isinstance(node, ast.Assign):
                    self._bind(node.targets, node.value)
                elif isinstance(node, ast.AnnAssign) and node.value:
                    self._bind([node.target], node.value)
        return_unit = return_unit_of_callee(self.fn.name)
        for node in nodes:
            if isinstance(node, (ast.BinOp, ast.Compare)):
                self._visit_arith(node)
            elif isinstance(node, ast.Call):
                self._visit_call(node)
            elif isinstance(node, ast.Assign):
                self._visit_assign(node.targets, node.value, node.lineno)
            elif isinstance(node, ast.AnnAssign) and node.value:
                self._visit_assign([node.target], node.value, node.lineno)
            elif isinstance(node, ast.AugAssign):
                self._visit_aug(node)
            elif isinstance(node, ast.Return) and node.value is not None:
                if (self.exact and return_unit == TICKS
                        and self.is_floaty(node.value)):
                    self.findings.append(Finding(
                        self.module.display_path, node.lineno, "U802",
                        "float-valued expression returned from "
                        f"tick-valued {self.fn.qualname}; exact layers "
                        "must keep integer ticks (wrap in int(round()) "
                        "or use a ticks_from_* conversion)"))

    def _bind(self, targets, value: ast.expr) -> None:
        unit = self.unit_of(value)
        floaty = self.is_floaty(value)
        for target in targets:
            if isinstance(target, ast.Name):
                named = unit_of_name(target.id)
                if named == UNKNOWN and unit != UNKNOWN:
                    self.env[target.id] = unit
                self.floaty[target.id] = floaty

    def _visit_arith(self, node) -> None:
        if isinstance(node, ast.Compare) and len(node.comparators) == 1:
            if not isinstance(node.ops[0], (ast.Lt, ast.LtE, ast.Gt,
                                            ast.GtE)):
                return
            left = self.unit_of(node.left)
            right = self.unit_of(node.comparators[0])
            self._check_mix(node, left, right, "a comparison")
        # Additive BinOp mixing is reported by unit_of/_binop_unit when
        # the enclosing statement evaluates it; evaluate directly so
        # bare expressions are covered exactly once.
        elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)):
            self._check_mix(node, self.unit_of(node.left),
                            self.unit_of(node.right), "arithmetic")

    def _visit_call(self, call: ast.Call) -> None:
        name = resolve_call_name(call.func, self.aliases)
        if is_conversion_call(name):
            return  # explicit conversions accept any unit
        target = _resolve_target(
            self.builder.table, self.module.name, self.fn, call.func,
            self.scope, self.aliases, self.local_functions)
        if target is None or is_external(target):
            return
        callee = self.builder.table.functions.get(target)
        if callee is None:
            return
        offset = 1 if callee.is_method else 0
        pairs: List[Tuple[str, ast.expr]] = []
        for i, arg in enumerate(call.args):
            index = i + offset
            if index < len(callee.params):
                pairs.append((callee.params[index], arg))
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in callee.params:
                pairs.append((kw.arg, kw.value))
        for param, arg in pairs:
            param_unit = unit_of_name(param)
            arg_unit = self.unit_of(arg)
            if (param_unit in QUANTITIES and arg_unit in QUANTITIES
                    and param_unit != arg_unit):
                self.findings.append(Finding(
                    self.module.display_path, call.lineno, "U801",
                    f"{arg_unit} value passed to {param_unit} parameter "
                    f"{param!r} of {target} without an explicit "
                    "conversion"))
            if (self.exact and param_unit == TICKS
                    and self.is_floaty(arg)):
                self.findings.append(Finding(
                    self.module.display_path, call.lineno, "U802",
                    "float-valued expression passed to tick-valued "
                    f"parameter {param!r} of {target}; exact layers "
                    "must keep integer ticks"))

    def _visit_assign(self, targets, value: ast.expr,
                      lineno: int) -> None:
        if not self.exact or not self.is_floaty(value):
            return
        for target in targets:
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name is not None and unit_of_name(name) == TICKS:
                self.findings.append(Finding(
                    self.module.display_path, lineno, "U802",
                    f"float-valued expression assigned to tick-valued "
                    f"{name!r} in {self.fn.qualname}; exact layers must "
                    "keep integer ticks (wrap in int(round()))"))

    def _visit_aug(self, node: ast.AugAssign) -> None:
        target_name = None
        if isinstance(node.target, ast.Name):
            target_name = node.target.id
        elif isinstance(node.target, ast.Attribute):
            target_name = node.target.attr
        if target_name is None:
            return
        target_unit = self.env.get(target_name, unit_of_name(target_name))
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_mix(node, target_unit, self.unit_of(node.value),
                            "arithmetic")
        if (self.exact and target_unit == TICKS
                and self.is_floaty(node.value)):
            self.findings.append(Finding(
                self.module.display_path, node.lineno, "U802",
                f"float-valued expression folded into tick-valued "
                f"{target_name!r} in {self.fn.qualname}; exact layers "
                "must keep integer ticks"))


def unit_findings(module: ModuleInfo,
                  builder: GraphBuilder) -> List[Finding]:
    """All U801/U802 findings for one module."""
    if not module.name.startswith("repro."):
        return []
    findings: List[Finding] = []
    for fn in builder.by_module.get(module.name, []):
        _UnitChecker(module, fn, builder, findings).run()
    return sorted(set(findings))
