"""Suppression baselines for the verifier.

A baseline is a TOML file of ``[[suppression]]`` tables.  Each entry
names the rule, the file, a substring the finding's message must
contain, and a one-line justification — there are no blanket ignores:

.. code-block:: toml

    [[suppression]]
    rule = "D201"
    path = "src/repro/nt/system.py"
    match = "_dir_watchers"
    justification = "watch registry is keyed by live object identity ..."

The parser handles exactly this subset of TOML (array-of-tables headers
and double-quoted string assignments) so the verifier works on every
supported interpreter without depending on ``tomllib`` (3.11+) or any
third-party parser.

The engine treats a stale entry — one that suppressed nothing — as an
error, so the baseline can only shrink unless a justified entry is
added alongside the code it excuses.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from repro.verifier.findings import Finding

_REQUIRED_KEYS = ("rule", "path", "match", "justification")


class BaselineError(ValueError):
    """The baseline file is malformed or an entry is incomplete."""


@dataclass(frozen=True)
class Suppression:
    """One justified exemption from a rule."""

    rule: str
    path: str           # forward-slash path suffix the finding must match
    match: str          # substring of the finding message
    justification: str  # why this violation is acceptable

    def covers(self, finding: Finding) -> bool:
        if finding.rule != self.rule:
            return False
        if self.match not in finding.message:
            return False
        want = self.path.replace("\\", "/")
        got = finding.path.replace("\\", "/")
        return got == want or got.endswith("/" + want)


def _parse_value(raw: str, lineno: int, source: str) -> str:
    raw = raw.strip()
    if len(raw) < 2 or raw[0] != '"' or raw[-1] != '"':
        raise BaselineError(
            f"{source}:{lineno}: expected a double-quoted string value")
    body = raw[1:-1]
    # The only escapes the format needs: \" and \\.
    return body.replace('\\"', '"').replace("\\\\", "\\")


def parse_baseline(text: str, source: str = "<baseline>") -> List[Suppression]:
    """Parse baseline text into suppressions, validating every entry."""
    entries: List[dict] = []
    current: Optional[dict] = None
    current_line = 0
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line == "[[suppression]]":
            if current is not None:
                entries.append(current)
            current = {}
            current_line = lineno
            continue
        if line.startswith("["):
            raise BaselineError(
                f"{source}:{lineno}: unsupported table {line!r} "
                "(only [[suppression]] entries are allowed)")
        if "=" not in line:
            raise BaselineError(
                f"{source}:{lineno}: expected 'key = \"value\"'")
        if current is None:
            raise BaselineError(
                f"{source}:{lineno}: assignment outside a "
                "[[suppression]] entry")
        key, _, value = line.partition("=")
        key = key.strip()
        if key not in _REQUIRED_KEYS:
            raise BaselineError(
                f"{source}:{lineno}: unknown key {key!r} "
                f"(expected one of {', '.join(_REQUIRED_KEYS)})")
        if key in current:
            raise BaselineError(
                f"{source}:{lineno}: duplicate key {key!r} in entry")
        current[key] = _parse_value(value, lineno, source)
        current["_line"] = current.get("_line", current_line)
    if current is not None:
        entries.append(current)

    suppressions: List[Suppression] = []
    for entry in entries:
        for key in _REQUIRED_KEYS:
            if not entry.get(key, "").strip():
                raise BaselineError(
                    f"{source}: [[suppression]] entry is missing a "
                    f"non-empty {key!r} (every suppression must be "
                    "justified)")
        suppressions.append(Suppression(
            rule=entry["rule"], path=entry["path"],
            match=entry["match"], justification=entry["justification"]))
    return suppressions


def load_baseline(path: Path) -> List[Suppression]:
    """Load suppressions from ``path``; a missing file is an empty baseline."""
    if not path.exists():
        return []
    return parse_baseline(path.read_text(encoding="utf-8"), source=str(path))


def apply_baseline(
    findings: Iterable[Finding],
    suppressions: List[Suppression],
) -> Tuple[List[Finding], List[Finding], List[Suppression]]:
    """Split findings into (unsuppressed, suppressed) and report stale
    suppressions that covered nothing."""
    used = [False] * len(suppressions)
    kept: List[Finding] = []
    quieted: List[Finding] = []
    for finding in sorted(findings):
        hit = False
        for i, entry in enumerate(suppressions):
            if entry.covers(finding):
                used[i] = True
                hit = True
        (quieted if hit else kept).append(finding)
    stale = [entry for i, entry in enumerate(suppressions) if not used[i]]
    return kept, quieted, stale
