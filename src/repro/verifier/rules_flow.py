"""F-rules: interprocedural determinism taint.

The D-rules catch a wall-clock read or an ``id()`` key *where it is
written*; both real determinism bugs this project has shipped (the
identity-hashed ``cc.dirty_maps`` set, the ``id(cmap)`` LRU keys) were
*flow* bugs — the hazardous value was produced in one function and
became observable in another.  These rules run on the project call
graph (:mod:`repro.verifier.callgraph`) and track values across
function boundaries:

* **F601** — a function in the simulation scope (``repro.nt``,
  ``repro.workload``, ``repro.replay``) transitively reaches a
  wall-clock or entropy source (**any** ``time.*`` call — stricter than
  D101, which sanctions the monotonic timers — ``datetime.now``,
  ``os.urandom``, ``uuid1/4``, ``secrets.*``, module-level ``random.*``,
  unseeded RNG constructors) through any call chain.  Findings are
  reported at the *earliest simulation-scope frame* of each chain: the
  function that either contains the source call or calls a tainted
  helper outside the scope.  Deeper sim-scope callers are quiet — the
  root finding (or its justified baseline entry, the sanctioned-sink
  policy) covers them, so sanctioning ``HotPathProfiler`` does not
  blind the verifier to a new clock read elsewhere.
* **F602** — identity-derived values (``id()`` results, instances
  hashing by default ``object.__hash__``) flowing into a container that
  is later iterated, ordered, merged, or serialized — across function
  boundaries, via instance attributes, parameters, and return values.
  This is the exact shape of both shipped bugs.

Both rules are precision-first: an unresolvable receiver contributes no
edge and an unknown value no taint, so every finding is fixable rather
than suppressible noise.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.verifier.astutil import resolve_call_name
from repro.verifier.callgraph import (
    CallSite,
    GraphBuilder,
    _FunctionScope,
    _iter_scope_nodes,
    _resolve_target,
    is_external,
)
from repro.verifier.engine import ModuleInfo
from repro.verifier.findings import Finding
from repro.verifier.symbols import SymbolTable

SIM_SCOPE = ("repro.nt", "repro.workload", "repro.replay")


def in_sim_scope(qualname: str) -> bool:
    return qualname.startswith(SIM_SCOPE)


# --------------------------------------------------------------------- #
# F601 sources.

_WALL_CLOCK_CALLS = {
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "uuid.uuid1": "host-derived identifier",
    "uuid.uuid4": "entropy-derived identifier",
    "os.urandom": "entropy read",
    "os.getrandom": "entropy read",
    "random.SystemRandom": "entropy-backed RNG",
}

_SEEDED_CONSTRUCTORS = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
}


def classify_source(name: str) -> Optional[str]:
    """Why ``name`` is a wall-clock/entropy source, or ``None``."""
    if name in _WALL_CLOCK_CALLS:
        return _WALL_CLOCK_CALLS[name]
    if name.startswith("time.") and name.count(".") == 1:
        return "host clock read"
    if name.startswith("secrets."):
        return "entropy source"
    if (name.startswith("random.") and name.count(".") == 1
            and name not in _SEEDED_CONSTRUCTORS):
        return "module-level global RNG"
    return None


def direct_sources(module: ModuleInfo, builder: GraphBuilder,
                   ) -> Dict[str, List[Tuple[str, str, int]]]:
    """Per-function ``(source_name, why, line)`` source calls in a module.

    Scans every function scope in ``module`` for calls that read a wall
    clock or entropy pool, including unseeded RNG constructors (which
    need the call arguments, so graph edges alone cannot classify them).
    """
    aliases = builder.table.aliases.get(module.name, {})
    out: Dict[str, List[Tuple[str, str, int]]] = {}
    for fn in builder.by_module.get(module.name, []):
        if fn.node is None:
            continue
        hits: List[Tuple[str, str, int]] = []
        for node in _iter_scope_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, aliases)
            if name is None:
                continue
            why = classify_source(name)
            if why is not None:
                hits.append((name, why, node.lineno))
                continue
            if name in _SEEDED_CONSTRUCTORS and not node.args and not any(
                    kw.arg in ("seed", "x") for kw in node.keywords):
                hits.append((name, "RNG constructed without a seed",
                             node.lineno))
        if hits:
            out[fn.qualname] = sorted(hits, key=lambda h: (h[2], h[0]))
    return out


def f601_findings(
    table: SymbolTable,
    edges: Dict[str, List[CallSite]],
    sources: Dict[str, List[Tuple[str, str, int]]],
    display_paths: Dict[str, str],
) -> Iterator[Finding]:
    """Report sim-scope functions that reach a source.

    ``tainted_ext(f)`` means ``f`` reaches a source through a chain that
    never passes through another sim-scope function — those chains are
    the ones no other finding covers.
    """
    # Fixpoint over out-of-scope functions (handles cycles).
    tainted_ext: Set[str] = {
        fn for fn in sources if not in_sim_scope(fn)}
    changed = True
    while changed:
        changed = False
        for caller, sites in edges.items():
            if in_sim_scope(caller) or caller in tainted_ext:
                continue
            for site in sites:
                if (not is_external(site.callee)
                        and site.callee in tainted_ext):
                    tainted_ext.add(caller)
                    changed = True
                    break

    def chain_to_source(start: str) -> List[str]:
        """Shortest path start -> ... -> source through tainted_ext."""
        queue: List[Tuple[str, List[str]]] = [(start, [start])]
        seen = {start}
        while queue:
            node, path = queue.pop(0)
            if node in sources:
                name, why, _line = sources[node][0]
                return path + [name]
            for site in edges.get(node, []):
                callee = site.callee
                if is_external(callee) or callee in seen:
                    continue
                if callee in tainted_ext and not in_sim_scope(callee):
                    seen.add(callee)
                    queue.append((callee, path + [callee]))
        return [start]  # pragma: no cover - tainted implies a path

    for fn_qual in sorted(table.functions):
        if not in_sim_scope(fn_qual):
            continue
        path = display_paths.get(table.functions[fn_qual].module)
        if path is None:  # pragma: no cover - module outside the run
            continue
        if fn_qual in sources:
            name, why, line = sources[fn_qual][0]
            yield Finding(
                path, line, "F601",
                f"{fn_qual} reaches wall-clock/entropy source {name} "
                f"({why}); simulation state must derive from the seed "
                "— sanction telemetry-only reads via the baseline")
            continue
        for site in edges.get(fn_qual, []):
            callee = site.callee
            if is_external(callee) or in_sim_scope(callee):
                continue
            if callee in tainted_ext:
                chain = chain_to_source(callee)
                yield Finding(
                    path, site.line, "F601",
                    f"{fn_qual} transitively reaches wall-clock/entropy "
                    f"source via {' -> '.join([fn_qual] + chain)}; "
                    "simulation state must derive from the seed")
                break


# --------------------------------------------------------------------- #
# F602: identity flow into ordered/serialized containers.
#
# Value statuses are small serializable tuples:
#   ("id",)                 -- an id() result
#   ("call", qual)          -- return value of a project function
#   ("param", i)            -- the i-th parameter of this function
#   ("obj", class_qual)     -- instance of a known project class
#   ("attr", cls, name)     -- value of self.<name> on class ``cls``
# Containers are ("attr", class_qual, name) or ("local", fn_qual, name).

Status = Tuple
ContainerRef = Tuple[str, str, str]

_SET_CTORS = {"set", "frozenset"}
_ORDER_CALLS = {"sorted", "min", "max"}
_SERIALIZE_CALLS = {"json.dump", "json.dumps", "pickle.dump",
                    "pickle.dumps", "marshal.dump", "marshal.dumps",
                    "repr", "str"}


class ModuleFlowFacts:
    """Serializable F602/U-rule facts for one module."""

    def __init__(self) -> None:
        # container -> kind ("set" | "dict" | "list")
        self.container_kinds: Dict[ContainerRef, str] = {}
        # (container, value_status, line, insert_kind, fn_qual)
        self.inserts: List[Tuple] = []
        # (container, sink_kind, line, fn_qual)
        self.sinks: List[Tuple] = []
        # (dst_container, src_container, line, fn_qual) for update/|=
        self.merges: List[Tuple] = []
        # fn_qual -> list of return statuses
        self.returns: Dict[str, List[Status]] = {}
        # (callee_qual, arg_index, status, line, caller_qual)
        self.call_args: List[Tuple] = []
        # (class_qual, attr, status, line, fn_qual)
        self.attr_stores: List[Tuple] = []

    def to_doc(self) -> dict:
        return {
            "container_kinds": [
                [list(ref), kind]
                for ref, kind in sorted(self.container_kinds.items())],
            "inserts": [[list(c), list(s), ln, k, f]
                        for c, s, ln, k, f in self.inserts],
            "sinks": [[list(c), k, ln, f] for c, k, ln, f in self.sinks],
            "merges": [[list(d), list(s), ln, f]
                       for d, s, ln, f in self.merges],
            "returns": {fn: [list(s) for s in statuses]
                        for fn, statuses in sorted(self.returns.items())},
            "call_args": [[callee, i, list(s), ln, f]
                          for callee, i, s, ln, f in self.call_args],
            "attr_stores": [[c, a, list(s), ln, f]
                            for c, a, s, ln, f in self.attr_stores],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "ModuleFlowFacts":
        facts = cls()
        facts.container_kinds = {
            tuple(ref): kind for ref, kind in doc["container_kinds"]}
        facts.inserts = [(tuple(c), tuple(s), ln, k, f)
                         for c, s, ln, k, f in doc["inserts"]]
        facts.sinks = [(tuple(c), k, ln, f) for c, k, ln, f in doc["sinks"]]
        facts.merges = [(tuple(d), tuple(s), ln, f)
                        for d, s, ln, f in doc["merges"]]
        facts.returns = {fn: [tuple(s) for s in statuses]
                         for fn, statuses in doc["returns"].items()}
        facts.call_args = [(callee, i, tuple(s), ln, f)
                           for callee, i, s, ln, f in doc["call_args"]]
        facts.attr_stores = [(c, a, tuple(s), ln, f)
                             for c, a, s, ln, f in doc["attr_stores"]]
        return facts


class _FunctionFlowExtractor:
    """Walks one function and records F602 facts."""

    def __init__(self, module: ModuleInfo, fn, builder: GraphBuilder,
                 facts: ModuleFlowFacts) -> None:
        self.module = module
        self.fn = fn
        self.builder = builder
        self.facts = facts
        self.aliases = builder.table.aliases.get(module.name, {})
        self.local_functions = builder.local_functions(module.name)
        self.scope = _FunctionScope(fn, builder.table)
        self.env: Dict[str, Status] = {}
        for i, param in enumerate(fn.params):
            cls = self.scope.types.get(param)
            if cls is not None and i == 0 and fn.is_method:
                continue  # self/cls — not a flowing value
            if cls is not None:
                self.env[param] = ("obj", cls)
            else:
                self.env[param] = ("param", i)

    # -- expression status ------------------------------------------- #

    def status(self, expr: ast.expr) -> Optional[Status]:
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id)
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id in ("self", "cls")
                and self.fn.class_qualname):
            return ("attr", self.fn.class_qualname, expr.attr)
        if isinstance(expr, ast.Call):
            return self.call_status(expr)
        return None

    def call_status(self, call: ast.Call) -> Optional[Status]:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "id":
            return ("id",)
        target = _resolve_target(
            self.builder.table, self.module.name, self.fn, func,
            self.scope, self.aliases, self.local_functions)
        if target is None:
            return None
        if is_external(target):
            return None
        if target.endswith(".__init__"):
            return ("obj", target[: -len(".__init__")])
        return ("call", target)

    def container_of(self, expr: ast.expr) -> Optional[ContainerRef]:
        if isinstance(expr, ast.Name):
            return ("local", self.fn.qualname, expr.id)
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id in ("self", "cls")
                and self.fn.class_qualname):
            return ("attr", self.fn.class_qualname, expr.attr)
        return None

    # -- statement walk ---------------------------------------------- #

    def run(self) -> None:
        if self.fn.node is None:
            return
        nodes = list(_iter_scope_nodes(self.fn.node))
        # Two passes so names assigned later in the body still resolve:
        # the env is an over-approximation joined across program points.
        for _ in range(2):
            for node in nodes:
                if isinstance(node, ast.Assign):
                    self._assign(node.targets, node.value)
                elif isinstance(node, ast.AnnAssign) and node.value:
                    self._assign([node.target], node.value)
        for node in nodes:
            if isinstance(node, ast.Assign):
                self._record_assign(node.targets, node.value, node.lineno)
            elif isinstance(node, ast.AnnAssign) and node.value:
                self._record_assign([node.target], node.value, node.lineno)
            elif isinstance(node, ast.AugAssign):
                self._aug_assign(node)
            elif isinstance(node, ast.Call):
                self._call(node)
            elif isinstance(node, ast.Return) and node.value is not None:
                status = self.status(node.value)
                if status is not None:
                    self.facts.returns.setdefault(
                        self.fn.qualname, []).append(status)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._sink(node.iter, "iterated", node.lineno)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    self._sink(gen.iter, "iterated", node.lineno)

    def _assign(self, targets: Sequence[ast.expr],
                value: ast.expr) -> None:
        status = self.status(value)
        for target in targets:
            if isinstance(target, ast.Name) and status is not None:
                self.env[target.id] = status

    def _container_kind_of_value(self, value: ast.expr) -> Optional[str]:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(value, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            if value.func.id in _SET_CTORS:
                return "set"
            if value.func.id == "dict":
                return "dict"
            if value.func.id == "list":
                return "list"
        return None

    def _record_assign(self, targets: Sequence[ast.expr],
                       value: ast.expr, lineno: int) -> None:
        kind = self._container_kind_of_value(value)
        for target in targets:
            container = self.container_of(target)
            if container is not None and kind is not None:
                self.facts.container_kinds.setdefault(container, kind)
                if isinstance(value, ast.Set):
                    for elt in value.elts:
                        status = self.status(elt)
                        if status is not None:
                            self.facts.inserts.append(
                                (container, status, lineno, "set-add",
                                 self.fn.qualname))
            # d[k] = v  — dict keyed by k.
            if isinstance(target, ast.Subscript):
                key_container = self.container_of(target.value)
                if key_container is not None:
                    status = self.status(target.slice)
                    if status is not None:
                        self.facts.container_kinds.setdefault(
                            key_container, "dict")
                        self.facts.inserts.append(
                            (key_container, status, lineno, "dict-key",
                             self.fn.qualname))
            # self.attr = <status>  — attribute value store.
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in ("self", "cls")
                    and self.fn.class_qualname):
                status = self.status(value)
                if status is not None and status[0] != "attr":
                    self.facts.attr_stores.append(
                        (self.fn.class_qualname, target.attr, status,
                         lineno, self.fn.qualname))

    def _aug_assign(self, node: ast.AugAssign) -> None:
        if not isinstance(node.op, (ast.BitOr, ast.Add)):
            return
        dst = self.container_of(node.target)
        src = self.container_of(node.value)
        if dst is not None and src is not None:
            self.facts.merges.append(
                (dst, src, node.lineno, self.fn.qualname))

    def _call(self, call: ast.Call) -> None:
        func = call.func
        lineno = call.lineno
        # Method-shaped container operations.
        if isinstance(func, ast.Attribute):
            container = self.container_of(func.value)
            if container is not None:
                if func.attr == "add" and call.args:
                    status = self.status(call.args[0])
                    self.facts.container_kinds.setdefault(container, "set")
                    if status is not None:
                        self.facts.inserts.append(
                            (container, status, lineno, "set-add",
                             self.fn.qualname))
                    return
                if func.attr == "append" and call.args:
                    status = self.status(call.args[0])
                    if status is not None:
                        self.facts.inserts.append(
                            (container, status, lineno, "list-append",
                             self.fn.qualname))
                    return
                if func.attr == "update" and call.args:
                    src = self.container_of(call.args[0])
                    if src is not None:
                        self.facts.merges.append(
                            (container, src, lineno, self.fn.qualname))
                    return
        # Ordering / serialization sinks.
        name = resolve_call_name(func, self.aliases)
        if name in _ORDER_CALLS and call.args:
            self._sink(call.args[0], "ordered", lineno)
        elif name in _SERIALIZE_CALLS and call.args:
            for arg in call.args:
                self._sink(arg, "serialized", lineno)
        elif isinstance(func, ast.Name) and func.id in ("list", "tuple",
                                                        "iter"):
            if call.args:
                self._sink(call.args[0], "iterated", lineno)
        # Identity-relevant arguments crossing a call boundary.
        target = self.call_status(call)
        callee = target[1] if target is not None and \
            target[0] == "call" else None
        if callee is None and target is not None and target[0] == "obj":
            callee = target[1] + ".__init__"
        if callee is not None:
            for i, arg in enumerate(call.args):
                status = self.status(arg)
                if status is not None and status[0] in ("id", "obj",
                                                        "call", "attr"):
                    self.facts.call_args.append(
                        (callee, i, status, lineno, self.fn.qualname))

    def _sink(self, expr: ast.expr, kind: str, lineno: int) -> None:
        # sorted(x.keys()) / sorted(d.items()) see through the accessor.
        if (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr in ("keys", "items", "values")):
            expr = expr.func.value
        container = self.container_of(expr)
        if container is not None:
            self.facts.sinks.append(
                (container, kind, lineno, self.fn.qualname))


def extract_flow_facts(module: ModuleInfo,
                       builder: GraphBuilder) -> ModuleFlowFacts:
    """All F602 facts for one module."""
    facts = ModuleFlowFacts()
    for fn in builder.by_module.get(module.name, []):
        _FunctionFlowExtractor(module, fn, builder, facts).run()
    return facts


def f602_findings(
    table: SymbolTable,
    all_facts: Dict[str, ModuleFlowFacts],
    display_paths: Dict[str, str],
) -> Iterator[Finding]:
    """Resolve cross-module facts and report identity-flow violations."""
    # 1. Which functions return identity-derived values (fixpoint).
    returns_id: Set[str] = set()
    ret_deps: Dict[str, List[str]] = {}
    for facts in all_facts.values():
        for fn, statuses in facts.returns.items():
            for status in statuses:
                if status[0] == "id":
                    returns_id.add(fn)
                elif status[0] == "call":
                    ret_deps.setdefault(fn, []).append(status[1])
    changed = True
    while changed:
        changed = False
        for fn, deps in ret_deps.items():
            if fn not in returns_id and any(d in returns_id for d in deps):
                returns_id.add(fn)
                changed = True

    # 2. Parameter facts from every call site.  Call-site argument
    # positions are 0-based over the explicit arguments; a method's
    # parameter list starts at ``self``, so shift by one.
    param_id: Set[Tuple[str, int]] = set()
    param_classes: Dict[Tuple[str, int], Set[str]] = {}
    for facts in all_facts.values():
        for callee, i, status, _line, _caller in facts.call_args:
            target = table.functions.get(callee)
            index = i + 1 if target is not None and target.is_method else i
            if status[0] == "id" or (
                    status[0] == "call" and status[1] in returns_id):
                param_id.add((callee, index))
            elif status[0] == "obj":
                param_classes.setdefault(
                    (callee, index), set()).add(status[1])

    def resolve(status: Status, fn_qual: str,
                depth: int = 0) -> Optional[str]:
        """Collapse a status to a taint kind: "ID", "OBJ", or None."""
        if depth > 4 or status is None:
            return None
        head = status[0]
        if head == "id":
            return "ID"
        if head == "call":
            return "ID" if status[1] in returns_id else None
        if head == "obj":
            cls = table.classes.get(status[1])
            if cls is not None and cls.uses_identity_hash(table):
                return "OBJ"
            return None
        if head == "param":
            fn = table.functions.get(fn_qual)
            index = status[1]
            if (fn_qual, index) in param_id:
                return "ID"
            classes = set(param_classes.get((fn_qual, index), set()))
            if fn is not None and index < len(fn.params):
                annotation = fn.annotations.get(fn.params[index])
                if annotation is not None:
                    resolved_cls = table.resolve_class(annotation,
                                                       fn.module)
                    if resolved_cls is not None:
                        classes.add(resolved_cls)
            for cls_qual in sorted(classes):
                cls = table.classes.get(cls_qual)
                if cls is not None and cls.uses_identity_hash(table):
                    return "OBJ"
            return None
        if head == "attr":
            return attr_taint.get((status[1], status[2]))
        return None

    # 3. Attribute value taint (one round is enough for store->read).
    attr_taint: Dict[Tuple[str, str], str] = {}
    for _ in range(2):
        for facts in all_facts.values():
            for cls, attr, status, _line, fn_qual in facts.attr_stores:
                kind = resolve(status, fn_qual)
                if kind is not None:
                    attr_taint[(cls, attr)] = kind

    # 4. Container taint from inserts, then merge propagation.
    taint: Dict[ContainerRef, Tuple[str, str, int, str]] = {}
    kinds: Dict[ContainerRef, str] = {}
    for facts in all_facts.values():
        kinds.update(facts.container_kinds)
    for facts in all_facts.values():
        for container, status, line, insert_kind, fn_qual in facts.inserts:
            value_taint = resolve(status, fn_qual)
            if value_taint is None:
                continue
            ckind = kinds.get(container,
                              "set" if insert_kind == "set-add" else
                              "dict" if insert_kind == "dict-key" else
                              "list")
            # Sets hash elements; dicts/lists only carry raw id() ints.
            if value_taint == "OBJ" and ckind != "set":
                continue
            taint.setdefault(container,
                             (value_taint, fn_qual, line, insert_kind))
    for _ in range(2):
        for facts in all_facts.values():
            for dst, src, _line, fn_qual in facts.merges:
                if src in taint and dst not in taint:
                    taint[dst] = taint[src]
                    kinds.setdefault(dst, kinds.get(src, "set"))

    # 5. Findings at sinks over tainted containers.
    emitted: Set[Tuple] = set()
    for module_name in sorted(all_facts):
        facts = all_facts[module_name]
        path = display_paths.get(module_name)
        if path is None:  # pragma: no cover
            continue
        for container, sink_kind, line, fn_qual in facts.sinks:
            info = taint.get(container)
            if info is None:
                continue
            value_taint, insert_fn, insert_line, _ik = info
            ckind = kinds.get(container, "set")
            # Iterating an insertion-ordered dict/list is deterministic;
            # ordering or serializing raw id() keys never is.  A set is
            # hazardous to iterate either way.
            if ckind in ("dict", "list") and sink_kind == "iterated":
                continue
            if value_taint == "OBJ" and sink_kind != "iterated":
                continue  # sorted() imposes value order on objects
            what = ("id()-derived keys" if value_taint == "ID"
                    else "elements hashed by object identity")
            label = (f"{container[1]}.{container[2]}"
                     if container[0] == "attr"
                     else f"{container[2]} in {container[1]}")
            key = (path, line, container, sink_kind)
            if key in emitted:
                continue
            emitted.add(key)
            yield Finding(
                path, line, "F602",
                f"{ckind} {label} holds {what} (inserted in {insert_fn}) "
                f"and is {sink_kind} in {fn_qual}; identity varies "
                "across processes (the dirty_maps bug class)")
