"""L-rules: import-direction layering.

The repro tree is layered like the system it models: the simulator
kernel (``repro.nt``) at the bottom, workload generation above it, and
the analysis/statistics layers strictly on the *read side* — they may
consume what the trace agent wrote, never reach into live kernel state.

* **L501** — ``repro.analysis``/``repro.stats`` importing ``repro.nt``
  outside the tracing read-side whitelist (``records``, ``store``,
  ``spans``, ``collector``, ``snapshot``, plus the flight recorder's
  ``flight.log`` decoder).  Everything an analysis needs must be
  decodable from the archive; anything else couples the paper's
  figures to simulator internals.
* **L502** — ``repro.nt`` importing an upper layer
  (``repro.workload``/``repro.analysis``/``repro.replay``/
  ``repro.cli``/``repro.verifier``): the kernel must not know who
  drives it.
* **L503** — ``repro.common`` importing any other ``repro`` package:
  common is the shared bottom layer (clock, flags, status) and must
  stay dependency-free.

``if TYPE_CHECKING:`` imports are exempt — they never execute, so they
cannot create runtime coupling.  Function-level imports are *not*
exempt; deferring an import does not change the dependency direction.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.verifier.astutil import iter_imports
from repro.verifier.engine import ModuleInfo
from repro.verifier.findings import Finding

# The tracing read side: what the trace agent archives and analysis
# decodes.  Importing a *name* from a whitelisted module is fine even
# when that name is re-exported from deeper in the kernel.
READ_SIDE_WHITELIST: Tuple[str, ...] = (
    "repro.nt.tracing.records",
    "repro.nt.tracing.store",
    "repro.nt.tracing.spans",
    "repro.nt.tracing.collector",
    "repro.nt.tracing.snapshot",
    # The .ntmetrics decoder: pure stdlib framing, no live kernel state.
    "repro.nt.flight.log",
)

_ANALYSIS_PREFIXES = ("repro.analysis", "repro.stats")
_NT_FORBIDDEN = ("repro.workload", "repro.analysis", "repro.replay",
                 "repro.cli", "repro.verifier")


def _prefixed(module: str, prefixes: Tuple[str, ...]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def check_layering(module: ModuleInfo) -> Iterator[Finding]:
    """All L-rules for one module."""
    name = module.name
    is_analysis = _prefixed(name, _ANALYSIS_PREFIXES)
    is_nt = _prefixed(name, ("repro.nt",))
    is_common = _prefixed(name, ("repro.common",))
    if not (is_analysis or is_nt or is_common):
        return
    for node, imported, guarded in iter_imports(module.tree):
        if guarded:
            continue
        if is_analysis and _prefixed(imported, ("repro.nt",)):
            if imported not in READ_SIDE_WHITELIST:
                yield Finding(
                    module.display_path, node.lineno, "L501",
                    f"{name} imports {imported}; analysis/stats may only "
                    "use the tracing read side "
                    f"({', '.join(m.rsplit('.', 1)[1] for m in READ_SIDE_WHITELIST)})")
        if is_nt and _prefixed(imported, _NT_FORBIDDEN):
            yield Finding(
                module.display_path, node.lineno, "L502",
                f"{name} imports {imported}; the simulator kernel must "
                "not depend on the layers that drive or analyse it")
        if is_common and _prefixed(imported, ("repro",)):
            if not _prefixed(imported, ("repro.common",)):
                yield Finding(
                    module.display_path, node.lineno, "L503",
                    f"{name} imports {imported}; repro.common is the "
                    "dependency-free bottom layer")
