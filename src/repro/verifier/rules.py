"""The verifier rule registry.

``MODULE_RULES`` run once per parsed file; ``TREE_RULES`` run once over
the whole module set.  ``RULE_CATALOG`` is the operator-facing list the
CLI prints with ``repro verify --rules``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.verifier.engine import ModuleRule, TreeRule
from repro.verifier.flow import check_flow
from repro.verifier.rules_determinism import check_determinism
from repro.verifier.rules_exhaustiveness import check_exhaustiveness
from repro.verifier.rules_layering import check_layering
from repro.verifier.rules_protocol import check_protocol

MODULE_RULES: List[ModuleRule] = [
    check_determinism,
    check_protocol,
    check_layering,
]

TREE_RULES: List[TreeRule] = [
    check_exhaustiveness,
    check_flow,
]

RULE_CATALOG: List[Tuple[str, str]] = [
    ("D101", "banned wall-clock/entropy call (time.time, datetime.now, "
             "random.*, numpy legacy global RNG, uuid1/4, os.urandom, "
             "secrets.*)"),
    ("D102", "RNG constructed without a seed (Random(), default_rng())"),
    ("D103", "directory listing (os.listdir/scandir/walk, glob.glob/"
             "iglob, Path.iterdir/glob/rglob) used without sorted()"),
    ("D201", "id(...) in repro.nt/repro.workload — identity-keyed state "
             "varies across processes"),
    ("D202", "iteration over a set-typed local/attribute in "
             "repro.nt/repro.workload outside sorted()"),
    ("P301", "IRP handler path neither completes nor forwards the packet"),
    ("P302", "IRP handler path completes/forwards more than once "
             "(use-after-complete)"),
    ("L501", "repro.analysis/repro.stats imports repro.nt outside the "
             "tracing read-side whitelist"),
    ("L502", "repro.nt imports an upper layer (workload/analysis/replay/"
             "cli/verifier)"),
    ("L503", "repro.common imports another repro package"),
    ("T401", "IrpMajor member missing from records.py record emission"),
    ("T402", "FastIoOp member missing from records.py record emission"),
    ("T403", "IrpMajor member missing from FileSystemDriver._IRP_HANDLERS"),
    ("T404", "FastIoOp member missing from FileSystemDriver._FASTIO_HANDLERS"),
    ("T405", "SpanCause member never stamped by any instrumentation site"),
    ("T406", "StorageKind member missing from StorageDriver's "
             "_SERVICE_HANDLERS table"),
    ("T407", "StorageKind member not used by any PERSONALITIES entry"),
    ("F601", "sim-scope function transitively reaches a wall-clock/"
             "entropy source through the call graph (reported at the "
             "earliest sim-scope frame)"),
    ("F602", "identity-dependent value (id(), default object hash) "
             "flows into an iterated/ordered/serialized container "
             "across function boundaries — the dirty_maps bug class"),
    ("U801", "ticks/bytes/seconds quantities mixed in arithmetic, "
             "comparison, or a call argument without an explicit "
             "conversion constant"),
    ("U802", "float-producing expression flows into tick-valued state "
             "in the exact-arithmetic layers (repro.nt.storage, "
             "repro.nt.cache, repro.common.clock)"),
]
