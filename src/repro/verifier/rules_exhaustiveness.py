"""T-rules: exhaustiveness cross-checks over the op enums.

The paper's filter driver had to observe *every* request type; an op
the filter does not decode simply vanishes from the figures.  These
rules statically relate the enum definitions to the tables that must
cover them, so adding an ``IrpMajor``/``FastIoOp`` member without
teaching the trace path about it fails CI:

* **T401** — every ``IrpMajor`` member is mapped to a trace event kind
  in ``records.py`` (``_IRP_KIND_BY_MAJOR`` keys plus the majors
  special-cased inside ``kind_for_irp``).
* **T402** — every ``FastIoOp`` member is mapped in
  ``_FASTIO_KIND_BY_OP`` (a comprehension over the whole enum counts
  as full coverage).
* **T403** — every ``IrpMajor`` member has a dispatch entry in
  ``FileSystemDriver._IRP_HANDLERS``.
* **T404** — every ``FastIoOp`` member has an entry in
  ``FileSystemDriver._FASTIO_HANDLERS``.
* **T405** — every ``SpanCause`` member is assigned by at least one
  instrumentation site in ``repro.nt`` (a cause no component ever
  stamps is a dead partition in the attribution tables).
* **T406** — every ``StorageKind`` member has a service-time handler in
  ``StorageDriver``'s ``_SERVICE_HANDLERS`` table (a kind without a
  handler would crash the first transfer dispatched to it).
* **T407** — every ``StorageKind`` member is used by at least one
  personality in the ``PERSONALITIES`` registry (a kind no personality
  carries can never be mounted, so its handler is dead code and the
  whatif grid can never exercise it).

Each rule is skipped silently when the modules it relates are not part
of the verified path set — verifying a fixture directory must not
demand the whole tree.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.verifier.astutil import (
    attribute_refs,
    enum_member_names,
    find_assignment,
)
from repro.verifier.engine import ModuleIndex, ModuleInfo
from repro.verifier.findings import Finding

_IRP_MODULE = "repro.nt.io.irp"
_FASTIO_MODULE = "repro.nt.io.fastio"
_RECORDS_MODULE = "repro.nt.tracing.records"
_FSD_MODULE = "repro.nt.fs.driver"
_SPANS_MODULE = "repro.nt.tracing.spans"
_STORAGE_DEVICES_MODULE = "repro.nt.storage.devices"
_STORAGE_DRIVER_MODULE = "repro.nt.storage.driver"


def _dict_literal_key_attrs(value: Optional[ast.expr], base: str) -> Set[str]:
    """Attribute names used as ``base.X`` keys of a dict literal."""
    keys: Set[str] = set()
    if isinstance(value, ast.Dict):
        for key in value.keys:
            if (isinstance(key, ast.Attribute)
                    and isinstance(key.value, ast.Name)
                    and key.value.id == base):
                keys.add(key.attr)
    return keys


def _covers_whole_enum(value: Optional[ast.expr], enum_name: str) -> bool:
    """True for ``{op: ... for op in EnumName}`` — full coverage."""
    if not isinstance(value, ast.DictComp):
        return False
    for gen in value.generators:
        if isinstance(gen.iter, ast.Name) and gen.iter.id == enum_name:
            return True
    return False


def _function_attr_refs(tree: ast.Module, func_name: str,
                        base: str) -> Set[str]:
    for node in ast.walk(tree):
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == func_name):
            return attribute_refs(node, base)
    return set()


def _table_coverage(table_module: ModuleInfo, table_name: str,
                    enum_base: str, extra_func: Optional[str] = None,
                    ) -> "tuple[Set[str], bool]":
    """(covered member names, whole-enum comprehension?) for a table."""
    value = find_assignment(table_module.tree, table_name)
    if _covers_whole_enum(value, enum_base):
        return set(), True
    covered = _dict_literal_key_attrs(value, enum_base)
    if extra_func:
        covered |= _function_attr_refs(table_module.tree, extra_func,
                                       enum_base)
    return covered, False


def _check_table(index: ModuleIndex, rule: str,
                 enum_module: str, enum_name: str,
                 table_module_name: str, table_name: str,
                 extra_func: Optional[str] = None) -> Iterator[Finding]:
    enum_mod = index.get(enum_module)
    table_mod = index.get(table_module_name)
    if enum_mod is None or table_mod is None:
        return
    members = enum_member_names(enum_mod.tree, enum_name)
    if not members:
        return
    covered, whole = _table_coverage(table_mod, table_name, enum_name,
                                     extra_func)
    if whole:
        return
    line = 1
    value = find_assignment(table_mod.tree, table_name)
    if value is not None:
        line = value.lineno
    for member in sorted(members - covered):
        yield Finding(
            table_mod.display_path, line, rule,
            f"{enum_name}.{member} has no entry in {table_name}"
            + (f"/{extra_func}" if extra_func else "")
            + " — the op would be invisible to the trace path")


def check_exhaustiveness(index: ModuleIndex) -> Iterator[Finding]:
    """All T-rules over the verified module set."""
    yield from _check_table(index, "T401", _IRP_MODULE, "IrpMajor",
                            _RECORDS_MODULE, "_IRP_KIND_BY_MAJOR",
                            extra_func="kind_for_irp")
    yield from _check_table(index, "T402", _FASTIO_MODULE, "FastIoOp",
                            _RECORDS_MODULE, "_FASTIO_KIND_BY_OP",
                            extra_func="kind_for_fastio")
    yield from _check_table(index, "T403", _IRP_MODULE, "IrpMajor",
                            _FSD_MODULE, "_IRP_HANDLERS")
    yield from _check_table(index, "T404", _FASTIO_MODULE, "FastIoOp",
                            _FSD_MODULE, "_FASTIO_HANDLERS")
    yield from _check_table(index, "T406", _STORAGE_DEVICES_MODULE,
                            "StorageKind", _STORAGE_DRIVER_MODULE,
                            "_SERVICE_HANDLERS")

    # T407: every StorageKind member is carried by some personality in
    # the PERSONALITIES registry.
    devices_mod = index.get(_STORAGE_DEVICES_MODULE)
    if devices_mod is not None:
        kinds = enum_member_names(devices_mod.tree, "StorageKind")
        registry = find_assignment(devices_mod.tree, "PERSONALITIES")
        if kinds and registry is not None:
            used = attribute_refs(registry, "StorageKind")
            for member in sorted(kinds - used):
                yield Finding(
                    devices_mod.display_path, registry.lineno, "T407",
                    f"StorageKind.{member} is not used by any entry in "
                    "PERSONALITIES — unmountable kind, dead service "
                    "handler")

    # T405: every SpanCause member is stamped somewhere in repro.nt.
    spans_mod = index.get(_SPANS_MODULE)
    if spans_mod is None:
        return
    members = enum_member_names(spans_mod.tree, "SpanCause")
    if not members:
        return
    assigned: Set[str] = set()
    for module in index.modules:
        if not module.name.startswith("repro.nt"):
            continue
        skip = "SpanCause" if module.name == _SPANS_MODULE else None
        assigned |= attribute_refs(module.tree, "SpanCause",
                                   skip_class_body=skip)
    for member in sorted(members - assigned):
        yield Finding(
            spans_mod.display_path, 1, "T405",
            f"SpanCause.{member} is never assigned by any repro.nt "
            "instrumentation site — dead attribution partition")
