"""Project-wide symbol table for the interprocedural verifier rules.

The flow rules (F6xx) and unit rules (U8xx) need to see *across* files:
which functions exist, which class defines which methods, whether a
class customises ``__hash__``, and what each function's parameters are
called.  :func:`build_symbols` walks a
:class:`~repro.verifier.engine.ModuleIndex` once and produces that view
(stdlib :mod:`ast` only, like the rest of the verifier).

Qualified names follow the runtime convention:
``repro.nt.io.iomanager.IoManager._dispatch`` for a method,
``repro.workload.study.run_study`` for a module function, and
``repro.workload.study.run_study.mark`` for a function nested inside
another.  The table is a value object — building it never imports the
analysed code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.verifier.astutil import import_aliases
from repro.verifier.engine import ModuleIndex, ModuleInfo

MODULE_BODY = "<module>"


@dataclass
class FunctionSymbol:
    """One function or method definition."""

    qualname: str                 # repro.nt.x.Class.meth / repro.x.fn
    module: str                   # dotted module name
    name: str                     # bare name
    lineno: int
    class_qualname: Optional[str]  # owning class, if a method
    params: List[str]             # positional-or-keyword names, incl. self
    annotations: Dict[str, str]   # param name -> unparsed annotation text
    node: Optional[ast.AST] = field(default=None, repr=False)

    @property
    def is_method(self) -> bool:
        return self.class_qualname is not None


@dataclass
class ClassSymbol:
    """One class definition."""

    qualname: str
    module: str
    name: str
    lineno: int
    base_names: List[str]         # unparsed base expressions
    decorators: List[str] = field(default_factory=list)
    methods: Set[str] = field(default_factory=set)
    defines_hash: bool = False    # __hash__ in the class body
    defines_eq: bool = False      # __eq__ in the class body
    # attribute name -> class qualname, from ``self.x = ClassName(...)``
    # assignments and ``x: ClassName`` class-level annotations.
    attr_classes: Dict[str, str] = field(default_factory=dict)

    def uses_identity_hash(self, table: "SymbolTable") -> bool:
        """True when instances *provably* hash by identity.

        A class that defines ``__hash__`` anywhere in its project-visible
        MRO hashes by value; one that defines ``__eq__`` without
        ``__hash__`` is unhashable (so it can never silently enter a
        set).  Decorators (``@dataclass`` injects value semantics) and
        bases the table cannot resolve (``enum.IntEnum``, ``NamedTuple``)
        make the hash semantics unknowable, so — precision first — the
        class is then *not* reported as identity-hashed.
        """
        seen: Set[str] = set()
        stack = [self.qualname]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            cls = table.classes.get(qual)
            if cls is None:
                continue
            if cls.defines_hash or cls.defines_eq or cls.decorators:
                return False
            for base in cls.base_names:
                resolved = table.resolve_class(base, cls.module)
                if resolved is None:
                    if base.split("[", 1)[0].strip() != "object":
                        return False  # unknown base — unknowable hash
                else:
                    stack.append(resolved)
        return True


@dataclass
class SymbolTable:
    """Every function and class a verifier run can see."""

    functions: Dict[str, FunctionSymbol] = field(default_factory=dict)
    classes: Dict[str, ClassSymbol] = field(default_factory=dict)
    # simple class name -> sorted list of qualnames defining it
    class_names: Dict[str, List[str]] = field(default_factory=dict)
    # simple method name -> sorted list of function qualnames
    method_names: Dict[str, List[str]] = field(default_factory=dict)
    # module name -> {local binding -> fully qualified imported name}
    aliases: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def resolve_class(self, name: str, module: str) -> Optional[str]:
        """Qualified name of class ``name`` as seen from ``module``.

        ``name`` may be a bare identifier, a dotted path, or an unparsed
        annotation like ``Optional[StudyTelemetry]`` — the last
        identifier segment that names a known class wins.
        """
        for ident in _annotation_identifiers(name):
            qual = self._resolve_class_ident(ident, module)
            if qual is not None:
                return qual
        return None

    def _resolve_class_ident(self, ident: str,
                             module: str) -> Optional[str]:
        # Same-module class first.
        direct = f"{module}.{ident}"
        if direct in self.classes:
            return direct
        # Through the module's import aliases.
        target = self.aliases.get(module, {}).get(ident.split(".", 1)[0])
        if target is not None:
            tail = ident.split(".", 1)[1] if "." in ident else ""
            candidate = f"{target}.{tail}" if tail else target
            if candidate in self.classes:
                return candidate
        if ident in self.classes:
            return ident
        # Unique simple name anywhere in the project.
        matches = self.class_names.get(ident.rsplit(".", 1)[-1], [])
        if len(matches) == 1:
            return matches[0]
        return None

    def resolve_method(self, class_qualname: str,
                       method: str) -> Optional[str]:
        """Find ``method`` on ``class_qualname`` or its project bases."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            qual = stack.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            cls = self.classes.get(qual)
            if cls is None:
                continue
            if method in cls.methods:
                return f"{qual}.{method}"
            for base in cls.base_names:
                resolved = self.resolve_class(base, cls.module)
                if resolved is not None:
                    stack.append(resolved)
        return None


def _annotation_identifiers(text: str) -> List[str]:
    """Dotted identifiers appearing in an annotation string, in order."""
    idents: List[str] = []
    current: List[str] = []
    for ch in text:
        if ch.isalnum() or ch in "._":
            current.append(ch)
        else:
            if current:
                idents.append("".join(current).strip("."))
            current = []
    if current:
        idents.append("".join(current).strip("."))
    # Strip typing wrappers so Optional[Foo] tries Foo first.
    wrappers = {"Optional", "Union", "List", "Dict", "Set", "Tuple",
                "Sequence", "Iterable", "Iterator", "Mapping", "Type",
                "typing", "None", "str", "int", "float", "bool", "bytes"}
    return [i for i in idents if i.split(".")[-1] not in wrappers]


def _param_info(node: ast.AST) -> Tuple[List[str], Dict[str, str]]:
    args = getattr(node, "args", None)
    if args is None:
        return [], {}
    params: List[str] = []
    annotations: Dict[str, str] = {}
    every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    for arg in every:
        params.append(arg.arg)
        if arg.annotation is not None:
            try:
                annotations[arg.arg] = ast.unparse(arg.annotation)
            except Exception:  # pragma: no cover - malformed annotation
                pass
    return params, annotations


def build_symbols(index: ModuleIndex) -> SymbolTable:
    """Walk every module and build the project symbol table."""
    table = SymbolTable()
    for module in index.modules:
        table.aliases[module.name] = import_aliases(module.tree)
        _collect_module(module, table)
    for cls in table.classes.values():
        table.class_names.setdefault(cls.name, []).append(cls.qualname)
    for fn in table.functions.values():
        if fn.is_method:
            table.method_names.setdefault(fn.name, []).append(fn.qualname)
    for bucket in (table.class_names, table.method_names):
        for key in bucket:
            bucket[key] = sorted(bucket[key])
    return table


def _collect_module(module: ModuleInfo, table: SymbolTable) -> None:
    def visit(node: ast.AST, prefix: str,
              class_qual: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{child.name}"
                params, annotations = _param_info(child)
                table.functions[qual] = FunctionSymbol(
                    qualname=qual, module=module.name, name=child.name,
                    lineno=child.lineno, class_qualname=class_qual,
                    params=params, annotations=annotations, node=child)
                if class_qual is not None:
                    table.classes[class_qual].methods.add(child.name)
                    if child.name == "__hash__":
                        table.classes[class_qual].defines_hash = True
                    if child.name == "__eq__":
                        table.classes[class_qual].defines_eq = True
                visit(child, qual, None)
            elif isinstance(child, ast.ClassDef):
                qual = f"{prefix}.{child.name}"
                bases = []
                for base in child.bases:
                    try:
                        bases.append(ast.unparse(base))
                    except Exception:  # pragma: no cover
                        pass
                decorators = []
                for deco in child.decorator_list:
                    try:
                        decorators.append(ast.unparse(deco))
                    except Exception:  # pragma: no cover
                        pass
                table.classes[qual] = ClassSymbol(
                    qualname=qual, module=module.name, name=child.name,
                    lineno=child.lineno, base_names=bases,
                    decorators=decorators)
                _collect_class_attrs(child, qual, module, table)
                visit(child, qual, qual)
            else:
                visit(child, prefix, class_qual)

    # The module body itself is a callable scope (import-time code).
    table.functions[f"{module.name}.{MODULE_BODY}"] = FunctionSymbol(
        qualname=f"{module.name}.{MODULE_BODY}", module=module.name,
        name=MODULE_BODY, lineno=1, class_qualname=None,
        params=[], annotations={}, node=module.tree)
    visit(module.tree, module.name, None)


def _collect_class_attrs(cls_node: ast.ClassDef, class_qual: str,
                         module: ModuleInfo, table: SymbolTable) -> None:
    cls = table.classes[class_qual]
    for stmt in cls_node.body:
        if (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)):
            try:
                cls.attr_classes[stmt.target.id] = ast.unparse(
                    stmt.annotation)
            except Exception:  # pragma: no cover
                pass
    for node in ast.walk(cls_node):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(node.value, ast.Call)):
                name = _constructor_name(node.value)
                if name is not None:
                    cls.attr_classes.setdefault(target.attr, name)


def _constructor_name(call: ast.Call) -> Optional[str]:
    func = call.func
    parts: List[str] = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
        name = ".".join(reversed(parts))
        head = name.rsplit(".", 1)[-1]
        if head[:1].isupper():  # constructor-looking call
            return name
    return None
