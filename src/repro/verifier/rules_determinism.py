"""D-rules: determinism.

Simulation output must be a pure function of the seed, so the simulator
tree may not observe wall clocks, entropy pools, or any ordering that
depends on process memory layout:

* **D101** — banned wall-clock/entropy calls (``time.time``,
  ``datetime.now``, module-level ``random.*``, legacy ``numpy.random``
  globals, ``uuid.uuid1/4``, ``os.urandom``, ``secrets.*``).  The
  monotonic timers (``time.perf_counter`` etc.) stay legal: telemetry
  measures the host, never the simulation.
* **D102** — RNG constructed without a seed (``Random()``,
  ``default_rng()``): all randomness must derive from the study seed.
* **D201** — ``id(...)`` in ``repro.nt``/``repro.workload``: identity
  is process memory layout, so ``id()``-keyed dicts order differently
  across worker processes (the PR 2 ``dirty_maps`` bug class).
* **D202** — iteration over a ``set``-typed local/attribute in
  ``repro.nt``/``repro.workload`` outside ``sorted(...)``: sets of
  objects iterate in identity-hash order.
* **D103** — ``os.listdir``/``Path.iterdir``/``glob`` results consumed
  without ``sorted(...)``: directory order is filesystem-dependent.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.verifier.astutil import (
    import_aliases,
    parent_map,
    resolve_call_name,
)
from repro.verifier.engine import ModuleInfo
from repro.verifier.findings import Finding

# --------------------------------------------------------------------- #
# D101/D102: wall clock and entropy sources.

_BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "uuid.uuid1": "entropy/host-derived identifier",
    "uuid.uuid4": "entropy-derived identifier",
    "os.urandom": "entropy read",
    "os.getrandom": "entropy read",
    "random.SystemRandom": "entropy-backed RNG",
}

# Constructors that are fine *when seeded*.
_SEEDED_CONSTRUCTORS = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
}

# numpy.random callables that are not the shared global-state RNG.
_NUMPY_RANDOM_OK = {
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "BitGenerator", "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
}


def _check_banned_calls(module: ModuleInfo) -> Iterator[Finding]:
    aliases = import_aliases(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = resolve_call_name(node.func, aliases)
        if name is None:
            continue
        if name in _BANNED_CALLS:
            yield Finding(module.display_path, node.lineno, "D101",
                          f"call to {name} ({_BANNED_CALLS[name]}); "
                          "simulation state must derive from the seed")
            continue
        if name.startswith("secrets."):
            yield Finding(module.display_path, node.lineno, "D101",
                          f"call to {name} (entropy source)")
            continue
        if name in _SEEDED_CONSTRUCTORS:
            if not node.args and not any(
                    kw.arg in ("seed", "x") for kw in node.keywords):
                yield Finding(module.display_path, node.lineno, "D102",
                              f"{name}() constructed without a seed")
            continue
        if name.startswith("random.") and name.count(".") == 1:
            yield Finding(module.display_path, node.lineno, "D101",
                          f"call to {name} (module-level global RNG); "
                          "use a seeded random.Random instance")
            continue
        if (name.startswith("numpy.random.")
                and name.rsplit(".", 1)[1] not in _NUMPY_RANDOM_OK):
            yield Finding(module.display_path, node.lineno, "D101",
                          f"call to {name} (legacy numpy global RNG); "
                          "use numpy.random.default_rng(seed)")


# --------------------------------------------------------------------- #
# D103: unsorted directory listings.

_LISTING_CALLS = {"os.listdir", "os.scandir", "os.walk",
                  "glob.glob", "glob.iglob"}
_LISTING_METHODS = {"iterdir", "glob", "rglob"}


def _check_directory_listings(module: ModuleInfo) -> Iterator[Finding]:
    aliases = import_aliases(module.tree)
    parents = parent_map(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = resolve_call_name(node.func, aliases)
        is_listing = name in _LISTING_CALLS or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _LISTING_METHODS)
        if not is_listing:
            continue
        parent = parents.get(node)
        if (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id == "sorted"
                and parent.args and parent.args[0] is node):
            continue
        label = name or node.func.attr  # type: ignore[union-attr]
        yield Finding(module.display_path, node.lineno, "D103",
                      f"{label}(...) result used without sorted(); "
                      "directory order is filesystem-dependent")


# --------------------------------------------------------------------- #
# D201/D202: identity keys and set iteration in the simulator core.

_SIM_PREFIXES = ("repro.nt", "repro.workload")


def _in_sim_core(module: ModuleInfo) -> bool:
    return module.name.startswith(_SIM_PREFIXES)


def _check_identity_keys(module: ModuleInfo) -> Iterator[Finding]:
    if not _in_sim_core(module):
        return
    for node in ast.walk(module.tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"):
            yield Finding(module.display_path, node.lineno, "D201",
                          "id(...) derives a value from process memory "
                          "layout; id()-keyed maps order differently "
                          "across processes (the dirty_maps bug class)")


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


def _is_set_annotation(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
    else:
        try:
            text = ast.unparse(node)
        except Exception:  # pragma: no cover - malformed annotation
            return False
    head = text.split("[", 1)[0].strip()
    return head in ("set", "Set", "frozenset", "FrozenSet",
                    "typing.Set", "typing.FrozenSet")


def _collect_set_bindings(tree: ast.AST) -> "tuple[Set[str], Set[str]]":
    """(attribute names, local names) bound to set values in ``tree``."""
    attrs: Set[str] = set()
    names: Set[str] = set()

    def record(target: ast.expr, is_set: bool) -> None:
        if not is_set:
            return
        if isinstance(target, ast.Attribute):
            attrs.add(target.attr)
        elif isinstance(target, ast.Name):
            names.add(target.id)

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record(target, _is_set_expr(node.value))
        elif isinstance(node, ast.AnnAssign):
            is_set = _is_set_annotation(node.annotation) or (
                node.value is not None and _is_set_expr(node.value))
            record(node.target, is_set)
        elif isinstance(node, ast.arg) and node.annotation is not None:
            if _is_set_annotation(node.annotation):
                names.add(node.arg)
    return attrs, names


# Iteration contexts that materialize set order.
_ORDER_SINKS = {"list", "tuple", "enumerate", "iter", "reversed"}


def _check_set_iteration(module: ModuleInfo) -> Iterator[Finding]:
    if not _in_sim_core(module):
        return
    set_attrs, set_names = _collect_set_bindings(module.tree)

    def is_set_valued(node: ast.expr) -> bool:
        if _is_set_expr(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Attribute):
            return node.attr in set_attrs
        return False

    def flag(node: ast.expr, context: str) -> Iterator[Finding]:
        if is_set_valued(node):
            label = ast.unparse(node)
            yield Finding(module.display_path, node.lineno, "D202",
                          f"iteration over set-typed {label!r} {context}; "
                          "wrap in sorted() — sets of objects iterate in "
                          "identity-hash order")

    for node in ast.walk(module.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield from flag(node.iter, "in a for loop")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                yield from flag(gen.iter, "in a comprehension")
        elif isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_SINKS and node.args):
                yield from flag(node.args[0], f"via {node.func.id}()")
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join" and node.args):
                yield from flag(node.args[0], "via str.join()")


def check_determinism(module: ModuleInfo) -> Iterator[Finding]:
    """All D-rules for one module."""
    yield from _check_banned_calls(module)
    yield from _check_directory_listings(module)
    yield from _check_identity_keys(module)
    yield from _check_set_iteration(module)
