"""Findings: what a verifier rule reports.

A finding is one violation at one source location.  Findings are value
objects — hashable, ordered by location — so rule output is stable and
the engine can diff a run against a suppression baseline
(:mod:`repro.verifier.baseline`) deterministically.

Rule identifiers follow the Driver-Verifier-style catalog:

* ``D1xx``/``D2xx`` — determinism (wall-clock/entropy bans, unordered
  iteration hazards),
* ``P3xx`` — IRP completion protocol,
* ``L5xx`` — layering (import direction),
* ``T4xx`` — exhaustiveness cross-checks over the op enums.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at ``path:line``."""

    path: str       # forward-slash path, relative to the verify root
    line: int       # 1-based source line
    rule: str       # catalog id, e.g. "D201"
    message: str    # one-line human description

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"
