"""Call-graph construction over the project symbol table.

The graph is deliberately CHA-lite: edges are added only where the
receiver is *knowable* without running the program, so taint findings
stay precise enough to fix rather than suppress.

Resolved call shapes:

* direct calls — ``helper()``, ``module.helper()``, resolved through
  each module's import aliases;
* method calls on ``self``/``cls`` — resolved through the class body and
  its project-visible bases;
* method calls on typed receivers — parameter annotations
  (``console: CampaignConsole``, ``Optional[StudyTelemetry]``),
  constructor locals (``q = DeviceQueue()``), and constructor-assigned
  instance attributes (``self.telemetry = StudyTelemetry(...)``);
* constructor calls — ``ClassName()`` edges to ``ClassName.__init__``;
* dispatch tables — ``TABLE = {K: handler, ...}`` at module or class
  level followed by ``TABLE[k](...)`` / ``self._handlers[k](...)``
  edges to every table value (the ``_IRP_HANDLERS`` idiom);
* callable references passed as arguments — ``forward(self._complete)``
  adds a may-call edge from the caller to ``_complete`` (the
  ``forward_irp`` delegation idiom): passing a callable hands over the
  right to invoke it.

Unresolvable receivers produce *no* edge; the flow rules document this
as the engine's known imprecision rather than guessing across every
same-named method in the project.

Strongly connected components come from an iterative Tarjan, so
recursion (direct or mutual) cannot hang the propagation passes and the
cache layer can talk about re-analysis at SCC granularity.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.verifier.astutil import resolve_call_name
from repro.verifier.engine import ModuleIndex, ModuleInfo
from repro.verifier.symbols import (
    MODULE_BODY,
    FunctionSymbol,
    SymbolTable,
    _constructor_name,
    build_symbols,
)


@dataclass(frozen=True, order=True)
class CallSite:
    """One resolved edge: ``caller`` may invoke ``callee`` at ``line``."""

    caller: str
    callee: str     # project function qualname, or "ext:<dotted.name>"
    line: int


EXTERNAL = "ext:"


def external(name: str) -> str:
    return EXTERNAL + name


def is_external(callee: str) -> bool:
    return callee.startswith(EXTERNAL)


@dataclass
class CallGraph:
    """Edges over project functions plus external leaf names."""

    table: SymbolTable
    edges: Dict[str, List[CallSite]] = field(default_factory=dict)

    def add(self, caller: str, callee: str, line: int) -> None:
        sites = self.edges.setdefault(caller, [])
        site = CallSite(caller, callee, line)
        if site not in sites:
            sites.append(site)

    def callees(self, qualname: str) -> List[CallSite]:
        return self.edges.get(qualname, [])

    def finalize(self) -> None:
        for sites in self.edges.values():
            sites.sort()

    # ----------------------------------------------------------------- #
    # Strongly connected components (iterative Tarjan).

    def sccs(self) -> List[List[str]]:
        """SCCs over project-internal edges, in deterministic order."""
        nodes = sorted(self.table.functions)
        adj: Dict[str, List[str]] = {n: [] for n in nodes}
        for caller, sites in self.edges.items():
            for site in sites:
                if not is_external(site.callee) and site.callee in adj:
                    adj.setdefault(caller, []).append(site.callee)
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        result: List[List[str]] = []
        counter = [0]

        for root in nodes:
            if root in index:
                continue
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, child_i = work[-1]
                if child_i == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                children = adj.get(node, [])
                advanced = False
                while child_i < len(children):
                    child = children[child_i]
                    child_i += 1
                    if child not in index:
                        work[-1] = (node, child_i)
                        work.append((child, 0))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if advanced:
                    continue
                work.pop()
                if lowlink[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    result.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return result

    def scc_of(self) -> Dict[str, int]:
        """Function qualname -> index into :meth:`sccs`."""
        mapping: Dict[str, int] = {}
        for i, component in enumerate(self.sccs()):
            for member in component:
                mapping[member] = i
        return mapping


# --------------------------------------------------------------------- #
# Construction.


def _iter_scope_nodes(fn_node: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested defs/classes.

    Lambda bodies stay in scope — a lambda runs as part of its
    enclosing function for taint purposes.
    """
    stack = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _method_ref(node: ast.AST) -> Optional[Tuple[str, str]]:
    """(receiver, attr) for a one-hop attribute like ``self._complete``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)):
        return node.value.id, node.attr
    return None


class _FunctionScope:
    """Receiver typing inside one function: name -> class qualname."""

    def __init__(self, fn: FunctionSymbol, table: SymbolTable) -> None:
        self.fn = fn
        self.table = table
        self.types: Dict[str, str] = {}
        module = fn.module
        if fn.is_method and fn.params[:1]:
            self.types[fn.params[0]] = fn.class_qualname or ""
        for param, annotation in fn.annotations.items():
            resolved = table.resolve_class(annotation, module)
            if resolved is not None:
                self.types[param] = resolved
        if fn.node is None:
            return
        for node in _iter_scope_nodes(fn.node):
            if isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call):
                ctor = _constructor_name(node.value)
                if ctor is None:
                    continue
                resolved = table.resolve_class(ctor, module)
                if resolved is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.types[target.id] = resolved

    def class_of(self, name: str) -> Optional[str]:
        return self.types.get(name)


def _collect_dispatch_tables(index: ModuleIndex,
                             table: SymbolTable) -> Dict[str, List[ast.expr]]:
    """Map table reference keys to the callable value expressions.

    Keys: ``module:NAME`` for module-level tables, ``ClassQual:NAME``
    for class-level and ``self.NAME`` constructor-assigned tables.
    """
    tables: Dict[str, List[ast.expr]] = {}

    def record(key: str, value: ast.expr) -> None:
        if isinstance(value, ast.Dict):
            tables.setdefault(key, []).extend(
                v for v in value.values if v is not None)
        elif isinstance(value, (ast.List, ast.Tuple)):
            tables.setdefault(key, []).extend(value.elts)

    for module in index.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        record(f"{module.name}:{target.id}", node.value)
                    elif (isinstance(target, ast.Attribute)
                          and isinstance(target.value, ast.Name)
                          and target.value.id == "self"):
                        record(f"{module.name}:self.{target.attr}",
                               node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    record(f"{module.name}:{node.target.id}", node.value)
    return tables


class GraphBuilder:
    """Per-module edge extraction sharing one project symbol table.

    The cache layer re-extracts only changed files, so edge extraction
    must be callable one module at a time; whole-program context (the
    symbol table, dispatch tables) is rebuilt every run — it is cheap —
    while the per-module walk is the cacheable cost.
    """

    def __init__(self, index: ModuleIndex,
                 table: Optional[SymbolTable] = None) -> None:
        self.index = index
        self.table = table or build_symbols(index)
        self.dispatch = _collect_dispatch_tables(index, self.table)
        self.by_module: Dict[str, List[FunctionSymbol]] = {}
        for fn in self.table.functions.values():
            self.by_module.setdefault(fn.module, []).append(fn)

    def local_functions(self, module_name: str) -> Dict[str, str]:
        return {
            fn.name: fn.qualname
            for fn in self.by_module.get(module_name, [])
            if not fn.is_method and "." not in fn.name
            and fn.name != MODULE_BODY
            and fn.qualname == f"{module_name}.{fn.name}"}

    def module_edges(self, module: ModuleInfo) -> List[CallSite]:
        """All call edges whose caller is defined in ``module``."""
        graph = CallGraph(table=self.table)
        aliases = self.table.aliases.get(module.name, {})
        local_functions = self.local_functions(module.name)
        for fn in self.by_module.get(module.name, []):
            if fn.node is None:
                continue
            scope = _FunctionScope(fn, self.table)
            for node in _iter_scope_nodes(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                _resolve_call(graph, module.name, fn, node, scope,
                              aliases, local_functions, self.dispatch)
        sites: List[CallSite] = []
        for edge_sites in graph.edges.values():
            sites.extend(edge_sites)
        return sorted(sites)


def build_callgraph(index: ModuleIndex,
                    table: Optional[SymbolTable] = None) -> CallGraph:
    """Build the project call graph for ``index``."""
    builder = GraphBuilder(index, table)
    graph = CallGraph(table=builder.table)
    for module in index.modules:
        for site in builder.module_edges(module):
            graph.add(site.caller, site.callee, site.line)
    graph.finalize()
    return graph


def _resolve_target(table: SymbolTable, module_name: str,
                    fn: FunctionSymbol, expr: ast.expr,
                    scope: _FunctionScope, aliases: Dict[str, str],
                    local_functions: Dict[str, str]) -> Optional[str]:
    """Resolve a callable-valued expression to an edge target."""
    if isinstance(expr, ast.Name):
        name = expr.id
        # Nested function defined in this (or an enclosing) scope.
        nested = f"{fn.qualname}.{name}"
        if nested in table.functions:
            return nested
        if name in local_functions:
            return local_functions[name]
        # A class name: calling it runs __init__.
        cls = table.resolve_class(name, module_name) if (
            name[:1].isupper()) else None
        if cls is not None:
            init = table.resolve_method(cls, "__init__")
            return init if init is not None else cls + ".__init__"
        resolved = resolve_call_name(expr, aliases)
        if resolved is None or resolved == name:
            # Unknown bare name (builtin or unresolved) — externalize
            # builtins so source matching still sees e.g. ``id``.
            return external(name)
        # Imported function: project-internal if we know it.
        if resolved in table.functions:
            return resolved
        return external(resolved)
    ref = _method_ref(expr)
    if ref is not None:
        receiver, attr = ref
        receiver_cls = scope.class_of(receiver)
        if receiver_cls is None and receiver in ("self", "cls") \
                and fn.class_qualname:
            receiver_cls = fn.class_qualname
        if receiver_cls:
            method = table.resolve_method(receiver_cls, attr)
            if method is not None:
                return method
            # Constructor-assigned attribute holding a known class?
            cls_sym = table.classes.get(receiver_cls)
            if cls_sym is not None and attr in cls_sym.attr_classes:
                return None  # attribute value, not a method — no edge
            return None
        # module.attr through an import alias.
        resolved = resolve_call_name(expr, aliases)
        if resolved is not None:
            head = resolved.rsplit(".", 1)[0]
            if resolved in table.functions:
                return resolved
            cls = table.resolve_class(head, module_name)
            if cls is not None:
                method = table.resolve_method(cls, resolved.rsplit(
                    ".", 1)[-1])
                if method is not None:
                    return method
            if aliases.get(expr.value.id) is not None or \
                    expr.value.id in ("os", "time", "random", "uuid",
                                      "secrets", "json", "pickle"):
                return external(resolved)
        return None
    if isinstance(expr, ast.Attribute):
        # Deeper chains: receiver typed via self.<attr> class map.
        inner = _method_ref(expr.value)
        if inner is not None and inner[0] in ("self", "cls") \
                and fn.class_qualname:
            cls_sym = table.classes.get(fn.class_qualname)
            if cls_sym is not None:
                attr_cls = cls_sym.attr_classes.get(inner[1])
                if attr_cls is not None:
                    resolved_cls = table.resolve_class(
                        attr_cls, module_name)
                    if resolved_cls is not None:
                        return table.resolve_method(
                            resolved_cls, expr.attr)
        resolved = resolve_call_name(expr, aliases)
        if resolved is not None and resolved in table.functions:
            return resolved
        if resolved is not None:
            head = resolved.split(".", 1)[0]
            if head in ("os", "time", "random", "uuid", "secrets",
                        "datetime", "json", "pickle", "numpy"):
                return external(resolved)
    return None


def _resolve_call(graph: CallGraph, module_name: str, fn: FunctionSymbol,
                  call: ast.Call, scope: _FunctionScope,
                  aliases: Dict[str, str],
                  local_functions: Dict[str, str],
                  dispatch: Dict[str, List[ast.expr]]) -> None:
    line = call.lineno
    func = call.func
    # Dispatch-table invocation: TABLE[k](...) / self._handlers[k](...).
    if isinstance(func, ast.Subscript):
        keys: List[str] = []
        if isinstance(func.value, ast.Name):
            keys.append(f"{module_name}:{func.value.id}")
        ref = _method_ref(func.value)
        if ref is not None and ref[0] in ("self", "cls"):
            keys.append(f"{module_name}:self.{ref[1]}")
        for key in keys:
            for value in dispatch.get(key, []):
                target = _resolve_target(graph.table, module_name, fn,
                                         value, scope, aliases,
                                         local_functions)
                if target is not None:
                    graph.add(fn.qualname, target, line)
        return
    target = _resolve_target(graph.table, module_name, fn, func, scope,
                             aliases, local_functions)
    if target is not None:
        graph.add(fn.qualname, target, line)
    # Callable references handed over as arguments (delegation idiom):
    # the callee may invoke them, so the *caller* keeps responsibility.
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        if isinstance(arg, (ast.Name, ast.Attribute)):
            passed = _resolve_target(graph.table, module_name, fn, arg,
                                     scope, aliases, local_functions)
            if passed is not None and not is_external(passed):
                graph.add(fn.qualname, passed, line)
