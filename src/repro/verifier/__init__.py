"""Driver-Verifier-style static analysis for the repro tree.

NT ships Driver Verifier to machine-check the IRP protocol rules every
driver must obey; this package is the equivalent for the simulator's
own invariants.  An AST-based rule engine (stdlib :mod:`ast`, no
third-party dependencies) checks four rule families — determinism
(D), IRP completion protocol (P), layering (L), and op-enum
exhaustiveness (T) — against a justified suppression baseline
(``verifier_baseline.toml``).  ``repro verify [PATHS]`` is the CLI.

The static pass is paired with a runtime Driver-Verifier mode
(:mod:`repro.nt.io.verifier`, ``MachineConfig.verifier_enabled``) that
asserts the same protocol invariants against live traffic.
"""

from repro.verifier.baseline import (
    BaselineError,
    Suppression,
    load_baseline,
    parse_baseline,
)
from repro.verifier.engine import (
    ModuleIndex,
    ModuleInfo,
    VerifyReport,
    collect_files,
    load_modules,
    run_rules,
    verify_paths,
)
from repro.verifier.findings import Finding
from repro.verifier.rules import MODULE_RULES, RULE_CATALOG, TREE_RULES

__all__ = [
    "BaselineError",
    "Finding",
    "MODULE_RULES",
    "ModuleIndex",
    "ModuleInfo",
    "RULE_CATALOG",
    "Suppression",
    "TREE_RULES",
    "VerifyReport",
    "collect_files",
    "load_baseline",
    "load_modules",
    "parse_baseline",
    "run_rules",
    "verify_paths",
]
