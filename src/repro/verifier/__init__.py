"""Driver-Verifier-style static analysis for the repro tree.

NT ships Driver Verifier to machine-check the IRP protocol rules every
driver must obey; this package is the equivalent for the simulator's
own invariants.  An AST-based rule engine (stdlib :mod:`ast`, no
third-party dependencies) checks six rule families — determinism
(D), IRP completion protocol (P), layering (L), op-enum
exhaustiveness (T), interprocedural determinism taint (F), and the
tick/byte/seconds unit lattice (U) — against a justified suppression
baseline (``verifier_baseline.toml``).  The F and U families run on a
project-wide symbol table and call graph (:mod:`repro.verifier.flow`)
with a content-hash summary cache; findings export to SARIF 2.1.0 for
CI annotation.  ``repro verify [PATHS]`` is the CLI.

The static pass is paired with a runtime Driver-Verifier mode
(:mod:`repro.nt.io.verifier`, ``MachineConfig.verifier_enabled``) that
asserts the same protocol invariants against live traffic.
"""

from repro.verifier.baseline import (
    BaselineError,
    Suppression,
    load_baseline,
    parse_baseline,
)
from repro.verifier.astcache import CacheStats, FlowCache
from repro.verifier.engine import (
    ModuleIndex,
    ModuleInfo,
    VerifyContext,
    VerifyReport,
    collect_files,
    load_modules,
    run_rules,
    verify_paths,
)
from repro.verifier.findings import Finding
from repro.verifier.rules import MODULE_RULES, RULE_CATALOG, TREE_RULES
from repro.verifier.sarif import to_sarif, validate_sarif, write_sarif

__all__ = [
    "BaselineError",
    "CacheStats",
    "Finding",
    "FlowCache",
    "MODULE_RULES",
    "ModuleIndex",
    "ModuleInfo",
    "RULE_CATALOG",
    "Suppression",
    "TREE_RULES",
    "VerifyContext",
    "VerifyReport",
    "collect_files",
    "load_baseline",
    "load_modules",
    "parse_baseline",
    "run_rules",
    "to_sarif",
    "validate_sarif",
    "verify_paths",
    "write_sarif",
]
