"""Orchestrator for the interprocedural rule families (F6xx, U8xx).

``check_flow`` is the single tree rule the engine registers.  Per run
it:

1. builds the project symbol table (:mod:`repro.verifier.symbols`);
2. per module, extracts a *summary* — call-graph edges, determinism
   sources, identity-flow facts, unit findings — either fresh or from
   the content-hash cache (:mod:`repro.verifier.astcache`);
3. runs the cheap global passes over the merged summaries: F601
   transitive taint, F602 identity-flow resolution.

Step 2 is the only whole-program-sized cost, which is exactly what the
cache keys by ``(file_sha, symbols_sha)``; steps 1 and 3 are linear and
rerun every time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.verifier.astcache import (
    FlowCache,
    file_digest,
    symbols_digest,
)
from repro.verifier.callgraph import CallSite, GraphBuilder
from repro.verifier.engine import ModuleIndex, ModuleInfo
from repro.verifier.findings import Finding
from repro.verifier.rules_flow import (
    ModuleFlowFacts,
    direct_sources,
    extract_flow_facts,
    f601_findings,
    f602_findings,
)
from repro.verifier.rules_units import unit_findings
from repro.verifier.symbols import build_symbols


def _summarize(module: ModuleInfo, builder: GraphBuilder) -> dict:
    """The cacheable per-module summary (plain JSON types only)."""
    return {
        "edges": [[s.caller, s.callee, s.line]
                  for s in builder.module_edges(module)],
        "sources": {
            fn: [[name, why, line] for name, why, line in hits]
            for fn, hits in direct_sources(module, builder).items()},
        "facts": extract_flow_facts(module, builder).to_doc(),
        "units": [[f.path, f.line, f.rule, f.message]
                  for f in unit_findings(module, builder)],
    }


def analyze(index: ModuleIndex,
            cache: "FlowCache | None" = None) -> List[Finding]:
    """Run every interprocedural rule over ``index``."""
    table = build_symbols(index)
    builder = GraphBuilder(index, table)
    symbols_sha = symbols_digest(table)
    if cache is None:
        cache = FlowCache()

    edges: Dict[str, List[CallSite]] = {}
    sources: Dict[str, List[Tuple[str, str, int]]] = {}
    all_facts: Dict[str, ModuleFlowFacts] = {}
    display_paths: Dict[str, str] = {}
    findings: List[Finding] = []

    for module in index.modules:
        display_paths[module.name] = module.display_path
        file_sha = file_digest(module.source)
        summary = cache.get(module.name, file_sha, symbols_sha)
        if summary is None:
            summary = _summarize(module, builder)
            cache.put(module.name, file_sha, symbols_sha, summary)
        for caller, callee, line in summary["edges"]:
            edges.setdefault(caller, []).append(
                CallSite(caller, callee, line))
        for fn, hits in summary["sources"].items():
            sources[fn] = [(name, why, line) for name, why, line in hits]
        all_facts[module.name] = ModuleFlowFacts.from_doc(
            summary["facts"])
        findings.extend(Finding(path, line, rule, message)
                        for path, line, rule, message in summary["units"])

    findings.extend(f601_findings(table, edges, sources, display_paths))
    findings.extend(f602_findings(table, all_facts, display_paths))
    cache.save()
    return sorted(set(findings))


def check_flow(index: ModuleIndex,
               context=None) -> Iterable[Finding]:
    """Tree rule: interprocedural determinism taint + unit lattice."""
    cache = None
    if context is not None and context.cache_path is not None:
        cache = FlowCache.load(context.cache_path)
        context.cache_stats = cache.stats
    return analyze(index, cache)


check_flow.wants_context = True
