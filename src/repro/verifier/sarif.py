"""SARIF 2.1.0 export for verifier findings.

SARIF (Static Analysis Results Interchange Format, OASIS) is what CI
hosts ingest to annotate pull requests inline.  ``to_sarif`` renders a
:class:`~repro.verifier.engine.VerifyReport` into one SARIF ``run``:
kept findings become failing results, baseline-suppressed findings are
included with an ``external`` suppression carrying the baseline
justification (so review tooling shows *why* a hit is sanctioned
instead of hiding it).

``validate_sarif`` is a dependency-free structural validator for the
subset this exporter emits — the CI job and the unit tests both run it
on the artifact, so a malformed export fails fast rather than being
silently dropped by the upload step.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.verifier.baseline import Suppression
from repro.verifier.engine import VerifyReport
from repro.verifier.findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro-verify"


def _rule_index(catalog: Sequence[tuple]) -> Dict[str, int]:
    return {rule_id: i for i, (rule_id, _desc) in enumerate(catalog)}


def _result(finding: Finding, indices: Dict[str, int],
            suppression: Optional[Suppression]) -> dict:
    result: dict = {
        "ruleId": finding.rule,
        "level": "note" if suppression is not None else "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path,
                                     "uriBaseId": "REPOROOT"},
                "region": {"startLine": finding.line},
            },
        }],
        "suppressions": [],
    }
    if finding.rule in indices:
        result["ruleIndex"] = indices[finding.rule]
    if suppression is not None:
        result["suppressions"] = [{
            "kind": "external",
            "justification": suppression.justification,
        }]
    return result


def _covering(finding: Finding,
              suppressions: Sequence[Suppression]) -> Optional[Suppression]:
    for entry in suppressions:
        if entry.covers(finding):
            return entry
    return None  # pragma: no cover - suppressed implies a cover


def to_sarif(report: VerifyReport,
             suppressions: Sequence[Suppression] = ()) -> dict:
    """Render ``report`` as a SARIF 2.1.0 log (a plain dict)."""
    from repro.verifier.rules import RULE_CATALOG

    indices = _rule_index(RULE_CATALOG)
    results = [_result(f, indices, None) for f in report.findings]
    results.extend(_result(f, indices, _covering(f, suppressions))
                   for f in report.suppressed)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri":
                        "https://example.invalid/repro-verifier",
                    "rules": [
                        {"id": rule_id,
                         "shortDescription": {"text": description}}
                        for rule_id, description in RULE_CATALOG],
                },
            },
            "columnKind": "utf16CodeUnits",
            "originalUriBaseIds": {
                "REPOROOT": {"uri": "file:///"},
            },
            "results": results,
        }],
    }


def write_sarif(report: VerifyReport, path: Path,
                suppressions: Sequence[Suppression] = ()) -> None:
    doc = to_sarif(report, suppressions)
    errors = validate_sarif(doc)
    if errors:  # pragma: no cover - exporter bug, caught in tests
        raise ValueError("invalid SARIF produced: " + "; ".join(errors))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def validate_sarif(doc: object) -> List[str]:
    """Structural check of the SARIF subset this tool emits.

    Returns a list of human-readable problems; empty means valid.
    """
    errors: List[str] = []

    def expect(cond: bool, message: str) -> bool:
        if not cond:
            errors.append(message)
        return cond

    if not expect(isinstance(doc, dict), "log must be an object"):
        return errors
    expect(doc.get("version") == SARIF_VERSION,
           f"version must be {SARIF_VERSION!r}")
    expect(isinstance(doc.get("$schema"), str), "$schema must be a string")
    runs = doc.get("runs")
    if not expect(isinstance(runs, list) and len(runs) >= 1,
                  "runs must be a non-empty array"):
        return errors
    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        if not expect(isinstance(run, dict), f"{where} must be an object"):
            continue
        driver = run.get("tool", {}).get("driver", {}) \
            if isinstance(run.get("tool"), dict) else {}
        expect(isinstance(driver.get("name"), str) and driver.get("name"),
               f"{where}.tool.driver.name must be a non-empty string")
        rules = driver.get("rules", [])
        rule_ids = set()
        if expect(isinstance(rules, list),
                  f"{where}.tool.driver.rules must be an array"):
            for rj, rule in enumerate(rules):
                ok = (isinstance(rule, dict)
                      and isinstance(rule.get("id"), str))
                expect(ok, f"{where}.tool.driver.rules[{rj}] needs an id")
                if ok:
                    rule_ids.add(rule["id"])
        results = run.get("results")
        if not expect(isinstance(results, list),
                      f"{where}.results must be an array"):
            continue
        for si, result in enumerate(results):
            rw = f"{where}.results[{si}]"
            if not expect(isinstance(result, dict),
                          f"{rw} must be an object"):
                continue
            rule_id = result.get("ruleId")
            expect(isinstance(rule_id, str) and bool(rule_id),
                   f"{rw}.ruleId must be a non-empty string")
            if rule_ids and isinstance(rule_id, str):
                expect(rule_id in rule_ids,
                       f"{rw}.ruleId {rule_id!r} not in driver.rules")
            expect(result.get("level") in ("none", "note", "warning",
                                           "error"),
                   f"{rw}.level must be a SARIF level")
            message = result.get("message")
            expect(isinstance(message, dict)
                   and isinstance(message.get("text"), str),
                   f"{rw}.message.text must be a string")
            locations = result.get("locations")
            if expect(isinstance(locations, list) and locations,
                      f"{rw}.locations must be a non-empty array"):
                for li, loc in enumerate(locations):
                    lw = f"{rw}.locations[{li}]"
                    phys = (loc.get("physicalLocation")
                            if isinstance(loc, dict) else None)
                    if not expect(isinstance(phys, dict),
                                  f"{lw}.physicalLocation required"):
                        continue
                    art = phys.get("artifactLocation")
                    expect(isinstance(art, dict)
                           and isinstance(art.get("uri"), str),
                           f"{lw} artifactLocation.uri must be a string")
                    region = phys.get("region")
                    expect(isinstance(region, dict)
                           and isinstance(region.get("startLine"), int)
                           and region["startLine"] >= 1,
                           f"{lw} region.startLine must be a positive int")
            suppressions = result.get("suppressions")
            if suppressions is not None and expect(
                    isinstance(suppressions, list),
                    f"{rw}.suppressions must be an array"):
                for pi, sup in enumerate(suppressions):
                    expect(isinstance(sup, dict)
                           and sup.get("kind") in ("inSource", "external"),
                           f"{rw}.suppressions[{pi}].kind must be "
                           "inSource or external")
    return errors
