"""Descriptive statistics and CDF construction.

The paper repeatedly reports "X% of <things> are below <value>" curves
(figures 1–6 and 11–14 are all cumulative distributions, some weighted by a
second variable such as bytes transferred).  ``cdf_points`` and
``weighted_cdf_points`` produce exactly those curves; ``Summary`` carries the
avg/stdev/min/max descriptors tables 2 and 3 report — with the caveat the
paper itself raises (§6) that for heavy-tailed data these are summaries of a
sample, not parameters of a model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Basic descriptors of a sample (the paper's avg/stdev/min/max set)."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    p90: float
    p99: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} p50={self.median:.4g} p90={self.p90:.4g} "
            f"p99={self.p99:.4g} max={self.maximum:.4g}"
        )


_EMPTY_SUMMARY = Summary(0, float("nan"), float("nan"), float("nan"), float("nan"),
                         float("nan"), float("nan"), float("nan"))


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` for a sample; NaN fields when empty."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return _EMPTY_SUMMARY
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.percentile(arr, 50)),
        p90=float(np.percentile(arr, 90)),
        p99=float(np.percentile(arr, 99)),
    )


def percentile(values: Sequence[float], q: float) -> float:
    """Percentile ``q`` in [0, 100] of the sample; NaN when empty."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, q))


def cdf_points(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of a sample.

    Returns ``(x, p)`` where ``p[i]`` is the fraction of samples <= ``x[i]``;
    ``x`` is the sorted set of distinct sample values.  Suitable for plotting
    or for reading off "the Y% mark is at X" figures.
    """
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        return np.array([]), np.array([])
    x, counts = np.unique(arr, return_counts=True)
    p = np.cumsum(counts) / arr.size
    return x, p


def weighted_cdf_points(
    values: Sequence[float], weights: Sequence[float]
) -> tuple[np.ndarray, np.ndarray]:
    """CDF of ``values`` where each sample contributes its ``weight``.

    This is the construction behind the paper's "weighted by bytes
    transferred" figures (2 and 4): the curve answers "what fraction of all
    bytes moved in runs/files of size <= x".
    """
    v = np.asarray(values, dtype=float)
    w = np.asarray(weights, dtype=float)
    if v.shape != w.shape:
        raise ValueError("values and weights must have the same shape")
    if v.size == 0:
        return np.array([]), np.array([])
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total == 0:
        return np.array([]), np.array([])
    order = np.argsort(v, kind="stable")
    v_sorted = v[order]
    w_sorted = w[order]
    x, idx = np.unique(v_sorted, return_index=True)
    # Sum weights per distinct value: cumulative sum sliced at group ends.
    csum = np.cumsum(w_sorted)
    ends = np.append(idx[1:] - 1, v_sorted.size - 1)
    p = csum[ends] / total
    return x, p


def cdf_value_at(x: np.ndarray, p: np.ndarray, value: float) -> float:
    """Read P[X <= value] off a CDF produced by the functions above."""
    if x.size == 0:
        return float("nan")
    i = np.searchsorted(x, value, side="right") - 1
    if i < 0:
        return 0.0
    return float(p[i])


def cdf_quantile(x: np.ndarray, p: np.ndarray, q: float) -> float:
    """Smallest value at which the CDF reaches ``q`` (0 < q <= 1)."""
    if x.size == 0:
        return float("nan")
    if not (0.0 < q <= 1.0):
        raise ValueError("q must be in (0, 1]")
    i = int(np.searchsorted(p, q, side="left"))
    if i >= x.size:
        return float(x[-1])
    return float(x[i])
