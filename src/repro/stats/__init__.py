"""Statistics toolbox.

Two halves:

* *Samplers* (:mod:`repro.stats.distributions`) — seeded heavy-tailed and
  light-tailed random variates used by the synthetic workload generator.
* *Estimators* — the analyses the paper's §7 performs on its trace data:
  descriptive summaries and CDFs (:mod:`repro.stats.descriptive`), the Hill
  estimator and log-log complementary-distribution tail fit
  (:mod:`repro.stats.heavy_tail`), QQ-plot data against Normal and Pareto
  references (:mod:`repro.stats.qq`), Poisson multi-timescale burstiness
  comparison (:mod:`repro.stats.poisson`) and a variance-time self-similarity
  check (:mod:`repro.stats.selfsim`).
"""

from repro.stats.distributions import (
    Pareto,
    BoundedPareto,
    LogNormal,
    Exponential,
    HyperExponential,
    Uniform,
    Zipf,
    Choice,
    Constant,
    Empirical,
    OnOffProcess,
)
from repro.stats.descriptive import Summary, summarize, cdf_points, weighted_cdf_points, percentile
from repro.stats.heavy_tail import (
    hill_estimator,
    hill_plot,
    llcd_points,
    fit_tail_index,
    pareto_mle,
    TailFit,
)
from repro.stats.qq import qq_normal, qq_pareto, qq_correlation
from repro.stats.poisson import (
    aggregate_counts,
    synthesize_poisson_arrivals,
    index_of_dispersion,
    burstiness_profile,
    BurstinessProfile,
)
from repro.stats.selfsim import (
    variance_time_points,
    hurst_from_variance_time,
    hurst_rescaled_range,
)

__all__ = [
    "Pareto",
    "BoundedPareto",
    "LogNormal",
    "Exponential",
    "HyperExponential",
    "Uniform",
    "Zipf",
    "Choice",
    "Constant",
    "Empirical",
    "OnOffProcess",
    "Summary",
    "summarize",
    "cdf_points",
    "weighted_cdf_points",
    "percentile",
    "hill_estimator",
    "hill_plot",
    "llcd_points",
    "fit_tail_index",
    "pareto_mle",
    "TailFit",
    "qq_normal",
    "qq_pareto",
    "qq_correlation",
    "aggregate_counts",
    "synthesize_poisson_arrivals",
    "index_of_dispersion",
    "burstiness_profile",
    "BurstinessProfile",
    "variance_time_points",
    "hurst_from_variance_time",
    "hurst_rescaled_range",
]
