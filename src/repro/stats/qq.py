"""Quantile-quantile plot data against Normal and Pareto references.

Figure 9 of the paper shows the open-arrival sample departing badly from a
fitted Normal while matching a fitted Pareto almost perfectly.  These
functions produce the (theoretical quantile, deviation) pairs behind such
plots, plus a correlation score usable as a scalar goodness-of-fit so tests
and benchmarks can assert "Pareto fits better than Normal".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats as sstats

from repro.stats.heavy_tail import pareto_mle


def _plotting_positions(n: int) -> np.ndarray:
    """Median-unbiased plotting positions (Filliben-style)."""
    i = np.arange(1, n + 1, dtype=float)
    return (i - 0.3175) / (n + 0.365)


def qq_normal(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """QQ data against a Normal fitted by sample mean and std.

    Returns ``(observed_sorted, theoretical_quantiles)``.
    """
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size < 3:
        raise ValueError("need at least 3 samples")
    mu = arr.mean()
    sigma = arr.std(ddof=1)
    if sigma == 0:
        sigma = 1.0
    q = sstats.norm.ppf(_plotting_positions(arr.size), loc=mu, scale=sigma)
    return arr, q


def qq_pareto(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """QQ data against a Pareto fitted by maximum likelihood.

    Returns ``(observed_sorted, theoretical_quantiles)``; only positive
    samples participate (Pareto support is x >= xm > 0).
    """
    arr = np.asarray(values, dtype=float)
    arr = np.sort(arr[arr > 0])
    if arr.size < 3:
        raise ValueError("need at least 3 positive samples")
    alpha, xm = pareto_mle(arr)
    p = _plotting_positions(arr.size)
    q = xm * (1.0 - p) ** (-1.0 / alpha)
    return arr, q


def qq_correlation(observed: np.ndarray, theoretical: np.ndarray) -> float:
    """Pearson correlation of a QQ pairing: 1.0 means a perfect line.

    The probability-plot correlation coefficient is a standard scalar test
    statistic for distributional fit; comparing it across candidate
    distributions reproduces the figure-9 conclusion numerically.
    """
    o = np.asarray(observed, dtype=float)
    t = np.asarray(theoretical, dtype=float)
    if o.size != t.size or o.size < 3:
        raise ValueError("need equal-length arrays of at least 3 points")
    if np.all(o == o[0]) or np.all(t == t[0]):
        return 0.0
    return float(np.corrcoef(o, t)[0, 1])
