"""Variance-time self-similarity check.

The paper's §7 point 4 urges examining distributions "for possible
self-similar properties".  The variance-time plot is the classic test: for
an aggregated count process X^(m) (non-overlapping blocks of size m
averaged), self-similar traffic shows Var(X^(m)) ~ m^(2H-2) with Hurst
parameter H > 0.5, while short-range-dependent traffic decays like m^-1.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def variance_time_points(counts: Sequence[int],
                         block_sizes: Sequence[int] | None = None
                         ) -> tuple[np.ndarray, np.ndarray]:
    """(log10 m, log10 normalized variance) pairs for a count series.

    ``counts`` is a fine-grained arrival count series (e.g. per-second).
    Variances are normalised by the unaggregated variance so the intercept
    is 0 at m=1.
    """
    x = np.asarray(counts, dtype=float)
    if x.size < 16:
        raise ValueError("need at least 16 count samples")
    base_var = x.var(ddof=0)
    if base_var == 0:
        raise ValueError("count series has zero variance")
    if block_sizes is None:
        max_m = x.size // 8
        block_sizes = np.unique(np.logspace(0, np.log10(max(2, max_m)), num=20).astype(int))
    ms, vs = [], []
    for m in block_sizes:
        m = int(m)
        if m < 1 or x.size // m < 2:
            continue
        n_blocks = x.size // m
        blocks = x[: n_blocks * m].reshape(n_blocks, m).mean(axis=1)
        v = blocks.var(ddof=0)
        if v <= 0:
            continue
        ms.append(m)
        vs.append(v / base_var)
    if len(ms) < 3:
        raise ValueError("too few usable block sizes")
    return np.log10(np.array(ms, dtype=float)), np.log10(np.array(vs))


def hurst_from_variance_time(counts: Sequence[int],
                             block_sizes: Sequence[int] | None = None) -> float:
    """Hurst parameter estimate from the variance-time slope.

    slope beta of log Var vs log m gives H = 1 + beta/2.  H ~ 0.5 means
    Poisson-like; H approaching 1 means strongly self-similar.
    """
    lm, lv = variance_time_points(counts, block_sizes)
    slope, _ = np.polyfit(lm, lv, 1)
    return float(1.0 + slope / 2.0)


def hurst_rescaled_range(counts: Sequence[int],
                         min_block: int = 8) -> float:
    """Hurst estimate via R/S (rescaled range) analysis — a cross-check.

    For each block size n, the mean of R/S over non-overlapping blocks
    grows like n^H; the slope of log(R/S) vs log(n) estimates H.
    """
    x = np.asarray(counts, dtype=float)
    if x.size < 4 * min_block:
        raise ValueError("need at least 4 blocks of the minimum size")
    sizes = np.unique(np.logspace(
        np.log10(min_block), np.log10(x.size // 4), num=12).astype(int))
    log_n, log_rs = [], []
    for n in sizes:
        n = int(n)
        if n < 2:
            continue
        n_blocks = x.size // n
        values = []
        for b in range(n_blocks):
            block = x[b * n:(b + 1) * n]
            dev = block - block.mean()
            z = np.cumsum(dev)
            r = z.max() - z.min()
            s = block.std(ddof=0)
            if s > 0 and r > 0:
                values.append(r / s)
        if values:
            log_n.append(np.log10(n))
            log_rs.append(np.log10(np.mean(values)))
    if len(log_n) < 3:
        raise ValueError("too few usable block sizes for R/S")
    slope, _ = np.polyfit(log_n, log_rs, 1)
    return float(slope)
