"""Heavy-tail estimation: Hill estimator and LLCD tail fits.

Section 7 of the paper establishes that every traced variable has a
power-law tail: P[X > x] ~ x^-alpha with alpha between 1.2 and 1.7.  Two
estimators are used there and reproduced here:

* the **Hill estimator** over the k largest order statistics, and
* a least-squares slope fit to the **log-log complementary distribution**
  (LLCD) plot, the construction behind the paper's figure 10.

``alpha < 2`` implies infinite variance; ``alpha < 1`` infinite mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def hill_estimator(values: Sequence[float], k: int) -> float:
    """Hill estimate of the tail index alpha from the k largest samples.

    ``alpha_hat = k / sum_{i=1..k} log(X_(n-i+1) / X_(n-k))`` where X_(j) are
    order statistics.  Requires at least ``k + 1`` positive samples.
    """
    arr = np.asarray(values, dtype=float)
    arr = arr[arr > 0]
    n = arr.size
    if k < 1:
        raise ValueError("k must be >= 1")
    if n < k + 1:
        raise ValueError(f"need at least k+1={k + 1} positive samples, have {n}")
    tail = np.sort(arr)[-(k + 1):]
    threshold = tail[0]
    logs = np.log(tail[1:] / threshold)
    denom = logs.sum()
    if denom <= 0:
        return float("inf")
    return float(k / denom)


def hill_plot(values: Sequence[float], k_values: Sequence[int] | None = None
              ) -> tuple[np.ndarray, np.ndarray]:
    """Hill estimates across a sweep of k (for choosing a stable region).

    Returns ``(k, alpha_hat)`` arrays.  Default sweep: 10 .. n/4 in ~50 steps.
    """
    arr = np.asarray(values, dtype=float)
    arr = arr[arr > 0]
    n = arr.size
    if n < 20:
        raise ValueError("need at least 20 positive samples for a Hill plot")
    if k_values is None:
        upper = max(11, n // 4)
        k_values = np.unique(np.linspace(10, upper, num=min(50, upper - 9), dtype=int))
    ks = np.asarray(list(k_values), dtype=int)
    alphas = np.array([hill_estimator(arr, int(k)) for k in ks])
    return ks, alphas


def llcd_points(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Log-log complementary distribution plot data (the paper's figure 10).

    Returns ``(log10(x), log10(P[X > x]))`` for the positive distinct sample
    values, excluding the largest point (where the empirical complementary
    CDF is zero and the log is undefined).
    """
    arr = np.asarray(values, dtype=float)
    arr = np.sort(arr[arr > 0])
    n = arr.size
    if n < 2:
        return np.array([]), np.array([])
    x, first_idx = np.unique(arr, return_index=True)
    # P[X > x] computed at each distinct value: count of samples strictly
    # greater, i.e. n - (index of last occurrence + 1).
    counts = np.append(first_idx[1:], n)  # cumulative count of samples <= x
    ccdf = (n - counts) / n
    keep = ccdf > 0
    return np.log10(x[keep]), np.log10(ccdf[keep])


@dataclass(frozen=True)
class TailFit:
    """Result of a least-squares LLCD tail fit."""

    alpha: float
    intercept: float
    r_squared: float
    n_tail_points: int

    @property
    def infinite_variance(self) -> bool:
        """Power-law tails with alpha < 2 have infinite variance."""
        return self.alpha < 2.0

    @property
    def infinite_mean(self) -> bool:
        """Power-law tails with alpha < 1 have infinite mean."""
        return self.alpha < 1.0


def fit_tail_index(values: Sequence[float], tail_fraction: float = 0.1) -> TailFit:
    """Estimate alpha by least-squares on the upper LLCD tail.

    ``tail_fraction`` selects the upper fraction of distinct values (by
    count of LLCD points) to fit, mirroring the paper's "least-squares
    regression of points in the plotted tail".
    """
    if not (0 < tail_fraction <= 1):
        raise ValueError("tail_fraction must be in (0, 1]")
    lx, ly = llcd_points(values)
    if lx.size < 5:
        raise ValueError("need at least 5 LLCD points to fit a tail")
    n_tail = max(5, int(lx.size * tail_fraction))
    tx = lx[-n_tail:]
    ty = ly[-n_tail:]
    slope, intercept = np.polyfit(tx, ty, 1)
    pred = slope * tx + intercept
    ss_res = float(np.sum((ty - pred) ** 2))
    ss_tot = float(np.sum((ty - ty.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return TailFit(alpha=float(-slope), intercept=float(intercept),
                   r_squared=r2, n_tail_points=int(n_tail))


def pareto_mle(values: Sequence[float]) -> tuple[float, float]:
    """Maximum-likelihood (alpha, xm) for a Pareto fit to positive samples.

    ``xm_hat = min(x)``; ``alpha_hat = n / sum(log(x / xm_hat))``.  Used to
    parameterise the Pareto reference line in QQ plots (figure 9, right).
    """
    arr = np.asarray(values, dtype=float)
    arr = arr[arr > 0]
    if arr.size < 2:
        raise ValueError("need at least 2 positive samples")
    xm = float(arr.min())
    logs = np.log(arr / xm)
    s = logs.sum()
    if s <= 0:
        return float("inf"), xm
    return float(arr.size / s), xm
