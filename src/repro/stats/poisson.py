"""Multi-timescale burstiness analysis against a Poisson reference.

Figure 8 of the paper views open-request arrival counts at 1 s, 10 s and
100 s aggregation and compares them with a synthesized Poisson process of
matching rate: the Poisson counts smooth out at coarser scales while the
trace counts stay bursty.  ``burstiness_profile`` packages that comparison
as the ratio of the index of dispersion across scales, which tests and
benchmarks can assert on without eyeballing a plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def aggregate_counts(arrival_times: Sequence[float], interval: float,
                     duration: float | None = None) -> np.ndarray:
    """Count arrivals per consecutive ``interval``-long bucket.

    ``arrival_times`` are event times (any unit); ``duration`` defaults to
    the last arrival time.  Empty trailing buckets are kept so rates are
    comparable across interval sizes.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    t = np.asarray(arrival_times, dtype=float)
    if t.size == 0:
        return np.array([], dtype=int)
    if duration is None:
        duration = float(t.max())
    if duration <= 0:
        return np.array([], dtype=int)
    n_bins = int(np.ceil(duration / interval))
    edges = np.arange(0, (n_bins + 1)) * interval
    counts, _ = np.histogram(t, bins=edges)
    return counts


def synthesize_poisson_arrivals(rate: float, duration: float,
                                rng: np.random.Generator) -> np.ndarray:
    """Arrival times of a homogeneous Poisson process on [0, duration).

    The paper's figure-8 bottom row: "a synthesized sample of a Poisson
    process with parameters estimated from the sample".
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    n = rng.poisson(rate * duration)
    return np.sort(rng.uniform(0, duration, size=n))


def index_of_dispersion(counts: Sequence[int]) -> float:
    """Variance-to-mean ratio of interval counts (1.0 for Poisson)."""
    arr = np.asarray(counts, dtype=float)
    if arr.size < 2:
        return float("nan")
    m = arr.mean()
    if m == 0:
        return float("nan")
    return float(arr.var(ddof=1) / m)


@dataclass(frozen=True)
class BurstinessProfile:
    """Index-of-dispersion across timescales, trace vs Poisson reference."""

    intervals: tuple[float, ...]
    trace_iod: tuple[float, ...]
    poisson_iod: tuple[float, ...]

    @property
    def remains_bursty(self) -> bool:
        """True when the trace stays far more dispersed than Poisson at the
        coarsest scale — the figure-8 conclusion."""
        if not self.intervals:
            return False
        t = self.trace_iod[-1]
        p = self.poisson_iod[-1]
        return bool(np.isfinite(t) and np.isfinite(p) and t > 5.0 * max(p, 1.0))


def burstiness_profile(arrival_times: Sequence[float],
                       intervals: Sequence[float],
                       rng: np.random.Generator,
                       duration: float | None = None) -> BurstinessProfile:
    """Compare arrival burstiness against a rate-matched Poisson synthesis.

    For each aggregation interval, computes the index of dispersion of the
    trace counts and of a synthesized Poisson process with the same mean
    rate over the same duration.
    """
    t = np.asarray(arrival_times, dtype=float)
    if t.size < 2:
        raise ValueError("need at least 2 arrivals")
    if duration is None:
        duration = float(t.max())
    rate = t.size / duration
    synth = synthesize_poisson_arrivals(rate, duration, rng)
    trace_iods = []
    poisson_iods = []
    for interval in intervals:
        trace_iods.append(index_of_dispersion(aggregate_counts(t, interval, duration)))
        poisson_iods.append(index_of_dispersion(aggregate_counts(synth, interval, duration)))
    return BurstinessProfile(
        intervals=tuple(float(i) for i in intervals),
        trace_iod=tuple(trace_iods),
        poisson_iod=tuple(poisson_iods),
    )
