"""Seeded random-variate samplers for the synthetic workload.

The paper's central statistical finding is that *every* file-system usage
variable it measured is heavy-tailed (Hill tail indices between 1.2 and
1.7).  To make those findings emergent rather than hard-coded, the workload
generator draws sizes, counts, think times and session lengths from the
samplers here — Pareto and bounded-Pareto for the tails, lognormal for
bodies, and an ON/OFF process for burst structure.

All samplers take a :class:`numpy.random.Generator`; the study seeds one
generator per machine so runs are fully reproducible.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


class Sampler:
    """Base class: a distribution that can draw scalar samples."""

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one variate."""
        raise NotImplementedError

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` variates as an array (default: loop over sample())."""
        return np.array([self.sample(rng) for _ in range(n)], dtype=float)

    def sample_int(self, rng: np.random.Generator, minimum: int = 0) -> int:
        """Draw one variate rounded to an int, floored at ``minimum``."""
        return max(minimum, int(round(self.sample(rng))))


class Constant(Sampler):
    """Degenerate distribution: always returns the same value."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value})"


class Uniform(Sampler):
    """Uniform on [low, high)."""

    def __init__(self, low: float, high: float) -> None:
        if high < low:
            raise ValueError("high must be >= low")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def __repr__(self) -> str:
        return f"Uniform({self.low}, {self.high})"


class Exponential(Sampler):
    """Exponential with the given mean (the light-tailed reference case)."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        self.mean = float(mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self.mean, size=n)

    def __repr__(self) -> str:
        return f"Exponential(mean={self.mean})"


class Pareto(Sampler):
    """Pareto with shape ``alpha`` and scale (minimum) ``xm``.

    P[X > x] = (xm / x) ** alpha for x >= xm.  ``alpha < 2`` gives infinite
    variance; ``alpha < 1`` infinite mean — the regime the paper reports for
    file-system variables (alpha in 1.2–1.7).
    """

    def __init__(self, alpha: float, xm: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if xm <= 0:
            raise ValueError("xm must be positive")
        self.alpha = float(alpha)
        self.xm = float(xm)

    def sample(self, rng: np.random.Generator) -> float:
        # Inverse-CDF: xm * U^(-1/alpha).
        u = rng.random()
        while u == 0.0:  # pragma: no cover - measure-zero guard
            u = rng.random()
        return self.xm * u ** (-1.0 / self.alpha)

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        u = rng.random(size=n)
        u[u == 0.0] = 0.5
        return self.xm * u ** (-1.0 / self.alpha)

    def mean(self) -> float:
        """Theoretical mean (inf when alpha <= 1)."""
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.xm / (self.alpha - 1.0)

    def __repr__(self) -> str:
        return f"Pareto(alpha={self.alpha}, xm={self.xm})"


class BoundedPareto(Sampler):
    """Pareto truncated to [low, high].

    Used where a physical bound exists (a file cannot exceed the volume, a
    read cannot exceed 4 GB) but the body should still be power-law.
    """

    def __init__(self, alpha: float, low: float, high: float) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if not (0 < low < high):
            raise ValueError("need 0 < low < high")
        self.alpha = float(alpha)
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.sample_many(rng, 1)[0])

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        a = self.alpha
        u = rng.random(size=n)
        # Inverse CDF of the truncated Pareto:
        # x = (L^-a - U * (L^-a - H^-a)) ^ (-1/a).
        ha = self.high ** -a
        la = self.low ** -a
        return (la - u * (la - ha)) ** (-1.0 / a)

    def __repr__(self) -> str:
        return f"BoundedPareto(alpha={self.alpha}, low={self.low}, high={self.high})"


class LogNormal(Sampler):
    """Lognormal parameterised by the median and sigma of log-space.

    ``median`` is exp(mu); heavy-ish body without a true power tail, used
    for distribution *bodies* (the small-file mass, short think times).
    """

    def __init__(self, median: float, sigma: float) -> None:
        if median <= 0:
            raise ValueError("median must be positive")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.median = float(median)
        self.sigma = float(sigma)
        self._mu = math.log(median)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu, self.sigma))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self._mu, self.sigma, size=n)

    def __repr__(self) -> str:
        return f"LogNormal(median={self.median}, sigma={self.sigma})"


class HyperExponential(Sampler):
    """Mixture of exponentials: a cheap high-variance (but light-tailed) mix.

    ``branches`` is a sequence of (probability, mean) pairs.
    """

    def __init__(self, branches: Sequence[tuple[float, float]]) -> None:
        if not branches:
            raise ValueError("need at least one branch")
        total = sum(p for p, _ in branches)
        if not math.isclose(total, 1.0, rel_tol=1e-9):
            raise ValueError(f"branch probabilities must sum to 1, got {total}")
        if any(m <= 0 for _, m in branches):
            raise ValueError("branch means must be positive")
        self.probs = np.array([p for p, _ in branches])
        self.means = np.array([m for _, m in branches])

    def sample(self, rng: np.random.Generator) -> float:
        i = rng.choice(len(self.probs), p=self.probs)
        return float(rng.exponential(self.means[i]))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        idx = rng.choice(len(self.probs), size=n, p=self.probs)
        return rng.exponential(self.means[idx])

    def __repr__(self) -> str:
        pairs = list(zip(self.probs.tolist(), self.means.tolist()))
        return f"HyperExponential({pairs})"


class Zipf(Sampler):
    """Zipf rank distribution over ``n`` items with exponent ``s``.

    Returns ranks in [0, n); used for popularity (which file of a set an
    application touches).
    """

    def __init__(self, n: int, s: float = 1.0) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if s <= 0:
            raise ValueError("s must be positive")
        self.n = int(n)
        self.s = float(s)
        weights = 1.0 / np.arange(1, self.n + 1, dtype=float) ** self.s
        self._cdf = np.cumsum(weights / weights.sum())

    def sample(self, rng: np.random.Generator) -> float:
        return float(np.searchsorted(self._cdf, rng.random(), side="right"))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.searchsorted(self._cdf, rng.random(size=n), side="right").astype(float)

    def __repr__(self) -> str:
        return f"Zipf(n={self.n}, s={self.s})"


class Choice(Sampler):
    """Discrete choice over explicit (value, weight) pairs.

    Used for things like the 512 / 4096-byte read-size preference the paper
    reports in §8.2.
    """

    def __init__(self, pairs: Sequence[tuple[float, float]]) -> None:
        if not pairs:
            raise ValueError("need at least one (value, weight) pair")
        if any(w < 0 for _, w in pairs):
            raise ValueError("weights must be non-negative")
        total = sum(w for _, w in pairs)
        if total <= 0:
            raise ValueError("total weight must be positive")
        self.values = np.array([v for v, _ in pairs], dtype=float)
        self.probs = np.array([w / total for _, w in pairs])

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.choice(self.values, p=self.probs))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.choice(self.values, size=n, p=self.probs)

    def __repr__(self) -> str:
        return f"Choice({len(self.values)} values)"


class Empirical(Sampler):
    """Inverse-CDF sampling from an observed sample.

    Stores a quantile grid of the data (bounded memory regardless of the
    sample size) and draws by interpolating a uniform variate through it.
    This is how fitted workload models (see
    :mod:`repro.workload.synthesis`) carry a traced distribution —
    including its heavy tail — into a generated benchmark, per the
    paper's §7 point 3.
    """

    def __init__(self, data, n_quantiles: int = 512) -> None:
        arr = np.asarray(data, dtype=float)
        arr = arr[np.isfinite(arr)]
        if arr.size == 0:
            raise ValueError("need at least one finite sample")
        if n_quantiles < 2:
            raise ValueError("need at least 2 quantiles")
        grid = np.linspace(0.0, 1.0, num=min(n_quantiles, max(2, arr.size)))
        self.quantiles = np.quantile(arr, grid)
        self._grid = grid
        self.n_source = int(arr.size)

    def sample(self, rng: np.random.Generator) -> float:
        return float(np.interp(rng.random(), self._grid, self.quantiles))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.interp(rng.random(size=n), self._grid, self.quantiles)

    def __repr__(self) -> str:
        return (f"Empirical(n={self.n_source}, "
                f"median={self.quantiles[len(self.quantiles) // 2]:.4g})")


class OnOffProcess:
    """An ON/OFF burst process with independently distributed period lengths.

    The paper (§7, citing Willinger/Paxson) attributes the self-similar
    burstiness of file-system traffic to heavy-tailed ON/OFF behaviour of the
    contributing processes.  The workload generator uses one of these per
    application session: during ON periods the application issues operations
    back-to-back (separated by `spacing` draws); OFF periods are idle.
    """

    def __init__(self, on_duration: Sampler, off_duration: Sampler) -> None:
        self.on_duration = on_duration
        self.off_duration = off_duration

    def periods(self, rng: np.random.Generator, horizon: float, start: float = 0.0):
        """Yield (on_start, on_end) bursts until ``horizon`` is reached.

        The process alternates ON, OFF, ON, ... beginning with an ON period
        at ``start``.  The final ON period is clipped to the horizon.
        """
        t = float(start)
        while t < horizon:
            on = max(0.0, float(self.on_duration.sample(rng)))
            end = min(t + on, horizon)
            if end > t:
                yield (t, end)
            t = end
            if t >= horizon:
                return
            off = max(0.0, float(self.off_duration.sample(rng)))
            t += off

    def __repr__(self) -> str:
        return f"OnOffProcess(on={self.on_duration!r}, off={self.off_duration!r})"
