"""The replay engine: re-drive an archived machine through a fresh one.

One :func:`replay_collector` call is the unit of work: it rebuilds the
machine the archive describes — volumes reconstructed from the archive's
snapshot records, remote shares re-mounted from the name records, the
process table re-registered — and feeds every archived trace record back
through the IRP/FastIO dispatch paths via the
:class:`~repro.nt.io.initiator.ReplayInitiator`.  The replay machine runs
with its trace filter attached, so the run produces a *second-generation*
trace the fidelity analysis (:mod:`repro.analysis.fidelity`) diffs against
the source.

Two modes:

* **closed-loop** (default): records are injected in their archived
  buffer order — which respects per-file-object dependency order, since
  the source filter appended each record at completion — as fast as the
  simulator services them.  The simulated clock advances only by the
  replayed operations' own service times.
* **open-loop**: before each record the engine advances the simulated
  clock to the archived ``t_start``, firing any timers due in between, so
  the replay preserves the source run's pacing and idle gaps.

The replay machine is quiesced so injected records are its *only* record
sources: the lazy writer never starts, directory-change notifications are
not delivered autonomously (the archived deliveries are injected), the
FastIO decline lottery is disabled, and the cache manager runs in
``assume_resident`` mode so no fault-in/read-ahead/flush paging IRPs are
regenerated (the archived paging records are injected verbatim instead).
Under those rules every archived record maps onto exactly one
second-generation record, which is what lets closed-loop replay match the
source's per-kind operation counts exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.clock import ticks_from_seconds
from repro.nt.flight.log import MetricsSection
from repro.nt.fs.nodes import DirectoryNode
from repro.nt.fs.path import split_path
from repro.nt.fs.volume import Volume
from repro.nt.io.initiator import ReplayInitiator, ReplayOutcome
from repro.nt.system import Machine, MachineConfig
from repro.nt.tracing.collector import TraceCollector

# Replay volumes get ample capacity: the source volume's exact fullness is
# unknowable from the archive (snapshots record sizes, not allocation), and
# a spurious DISK_FULL would diverge every subsequent write.
_REPLAY_VOLUME_CAPACITY = 64 * 1024**3

_MODES = ("open", "closed")


@dataclass(frozen=True)
class ReplayConfig:
    """Parameters of one replay run (picklable; crosses worker processes)."""

    mode: str = "closed"
    seed: int = 0
    # Post-injection drain so the scheduled cache-manager releases land
    # before the trace buffers flush.
    drain_seconds: float = 2.0
    perf_enabled: bool = True
    # Parallel fan-out: None replays machines serially in-process; an int
    # fans out over that many worker processes (0 = one per CPU core).
    workers: Optional[int] = None
    # Flight-recorder sampling interval (0 = off).  Closed-loop replay
    # advances the clock only by service time, so samples bunch up at the
    # drain; open-loop replay preserves pacing and yields a real series.
    metrics_interval_seconds: float = 0.0
    # Self-profiling of the replay dispatch hot path (off by default).
    profile_enabled: bool = False
    # Storage personality name (repro.nt.storage.devices.PERSONALITIES)
    # mounted below every rebuilt local volume.  None keeps the legacy
    # inline media pricing, byte-identical to pre-storage replays.
    storage: Optional[str] = None
    # Queue policy for the replay storage devices.
    storage_queue: str = "fifo"
    # Cache size override in MB for the rebuilt machines.  Replay runs
    # assume_resident (regenerated paging I/O would break the exact
    # core-count match), so the size is observed through the what-if
    # shadow cache (cc.whatif.* counters), not through real evictions.
    cache_mb: Optional[float] = None
    # Causal spans in the replay machines — the whatif critical-path
    # decomposition needs them.  Off by default: span tracing adds span
    # records to the second-generation collector.
    spans_enabled: bool = False

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"replay mode must be one of {_MODES}, got {self.mode!r}")
        if self.cache_mb is not None and self.cache_mb <= 0:
            raise ValueError("cache_mb must be positive")


@dataclass
class ReplayedMachine:
    """One machine's replay output: the second-generation trace + accounts."""

    index: int
    name: str
    category: str
    collector: TraceCollector
    outcome: ReplayOutcome
    counters: dict = field(default_factory=dict)
    perf: dict = field(default_factory=dict)
    metrics: Optional[MetricsSection] = None
    profile: dict = field(default_factory=dict)


def _category_of(machine_name: str) -> str:
    """Invert workload.study.machine_name_for ('m03-personal')."""
    _head, sep, tail = machine_name.partition("-")
    return tail if sep else "unknown"


def _volume_labels(source: TraceCollector) -> tuple[list[str], list[str]]:
    """(local labels, remote labels) of the source machine, in first-seen
    order — snapshots name the local volumes, name records fill in the
    remote shares (which the snapshot walker never visits)."""
    local: list[str] = []
    for label, _when, _records in source.snapshots:
        if label not in local:
            local.append(label)
    remote: list[str] = []
    for name in source.name_records:
        if name.volume_is_remote:
            if name.volume_label not in remote:
                remote.append(name.volume_label)
        elif name.volume_label not in local:
            local.append(name.volume_label)
    return local, remote


def _first_snapshots(source: TraceCollector) -> dict[str, list]:
    """Each volume's *first* snapshot — the tree as tracing began."""
    first: dict[str, list] = {}
    for label, _when, records in source.snapshots:
        first.setdefault(label, records)
    return first


def _rebuild_tree(volume: Volume, records) -> None:
    """Materialise a snapshot walk back into a live namespace.

    Snapshot order guarantees directories precede their contents, so the
    parent chain always exists; the defensive lookup covers archives with
    hand-edited or truncated snapshot sections.
    """
    for snap in records:
        parts = split_path(snap.path)
        if not parts:
            continue
        parent = volume.root
        for component in parts[:-1]:
            child = parent.lookup(component)
            if child is None:
                child = volume.create_directory(parent, component, 0, 0)
            if not isinstance(child, DirectoryNode):
                break
            parent = child
        else:
            leaf = parts[-1]
            if parent.lookup(leaf) is not None:
                continue
            if snap.is_directory:
                node = volume.create_directory(parent, leaf, 0, 0)
            else:
                node = volume.create_file(parent, leaf, 0, 0)
                if snap.size > 0:
                    volume.set_file_size(node, snap.size, 0)
                    node.valid_data_length = snap.size
            node.creation_time = snap.creation_time
            node.last_write_time = snap.last_write_time
            node.last_access_time = snap.last_access_time


def build_replay_machine(source: TraceCollector, index: int,
                         config: ReplayConfig) -> Machine:
    """A quiesced machine with the source's volumes and processes rebuilt."""
    cache_bytes = (int(config.cache_mb * 1024 * 1024)
                   if config.cache_mb is not None else None)
    machine_config = MachineConfig(
        name=source.machine_name,
        category=_category_of(source.machine_name),
        seed=config.seed * 10_007 + index,
        perf_enabled=config.perf_enabled,
        fastio_decline_probability=0.0,
        lazy_writer_enabled=False,
        metrics_interval_seconds=config.metrics_interval_seconds,
        profile_enabled=config.profile_enabled,
        storage=config.storage,
        storage_queue=config.storage_queue,
        cache_bytes=cache_bytes,
        spans_enabled=config.spans_enabled,
    )
    machine = Machine(machine_config)
    machine.deliver_change_notifications = False
    machine.cc.assume_resident = True
    if config.cache_mb is not None:
        # Grid cells observe their cache size through the shadow cache.
        machine.cc.install_overlay()
    local_labels, remote_labels = _volume_labels(source)
    snapshots = _first_snapshots(source)
    for slot, label in enumerate(local_labels):
        volume = Volume(label=label, fs_type=Volume.NTFS,
                        capacity_bytes=_REPLAY_VOLUME_CAPACITY,
                        disk=machine_config.disk)
        _rebuild_tree(volume, snapshots.get(label, []))
        machine.mount(f"R{slot}", volume)
    for label in remote_labels:
        volume = Volume(label=label,
                        capacity_bytes=_REPLAY_VOLUME_CAPACITY,
                        disk=machine_config.disk)
        machine.mount_remote(rf"\\replay\{label}", volume)
    for pid, name in source.process_names.items():
        machine.collector.register_process(
            pid, name, source.process_interactive.get(pid, False))
    return machine


def replay_collector(source: TraceCollector, index: int = 0,
                     config: ReplayConfig = ReplayConfig()
                     ) -> ReplayedMachine:
    """Replay one archived machine; returns its second-generation output."""
    machine = build_replay_machine(source, index, config)
    machine.take_snapshots()
    initiator = ReplayInitiator(machine, source, mode=config.mode)
    open_loop = config.mode == "open"
    for rec in source.records:
        if open_loop and rec.t_start > machine.clock.now:
            machine.run_until(rec.t_start)
        initiator.inject(rec)
    machine.finish_tracing(
        drain_ticks=ticks_from_seconds(config.drain_seconds))
    machine.take_snapshots()
    outcome = initiator.outcome
    perf = machine.perf
    if perf.enabled:
        perf.set_gauge("replay.divergence.status",
                       sum(outcome.status_divergences.values()))
        perf.set_gauge("replay.divergence.returned",
                       sum(outcome.returned_divergences.values()))
        perf.set_gauge("replay.divergence.skipped", outcome.skipped_records)
    return ReplayedMachine(
        index=index, name=source.machine_name,
        category=_category_of(source.machine_name),
        collector=machine.collector, outcome=outcome,
        counters=dict(machine.counters), perf=perf.snapshot(),
        metrics=(machine.flight.section()
                 if machine.flight is not None else None),
        profile=(machine.profiler.snapshot()
                 if machine.profiler.enabled else {}))
