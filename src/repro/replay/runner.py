"""Replay orchestration: whole archived studies, serial or fanned out.

Mirrors the ``workload`` split between :mod:`repro.workload.study`
(serial) and :mod:`repro.workload.parallel` (process pool): each archived
machine replays independently — its seed derives from the replay seed and
its index alone — so the fan-out rides the same generic
:func:`repro.workload.parallel.run_pool` engine and the same packed-bytes
transport, and the serial and parallel paths produce byte-identical
second-generation archives.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.nt.io.initiator import ReplayOutcome
from repro.nt.tracing.store import (
    load_collector,
    pack_collector,
    study_paths,
    unpack_collector,
)
from repro.replay.engine import ReplayConfig, ReplayedMachine, replay_collector
from repro.workload.study import StudyTelemetry
from repro.workload.parallel import resolve_workers, run_pool


@dataclass(frozen=True)
class ReplayTask:
    """Pickling-friendly description of one machine's replay.

    Workers re-read the archive file themselves (the path is cheap to
    pickle; the collector is not), so the parent never ships trace data
    to the pool.
    """

    index: int
    path: str
    config: ReplayConfig

    @property
    def machine_name(self) -> str:
        return Path(self.path).stem


class ReplayResult:
    """A replayed study: per-machine second-generation traces + accounts."""

    def __init__(self, machines: list[ReplayedMachine], mode: str) -> None:
        self.machines = machines
        self.mode = mode

    @property
    def collectors(self) -> list:
        return [m.collector for m in self.machines]

    @property
    def outcomes(self) -> list[ReplayOutcome]:
        return [m.outcome for m in self.machines]

    @property
    def perf_by_machine(self) -> dict[str, dict]:
        return {m.name: m.perf for m in self.machines}

    @property
    def metrics_sections(self) -> list:
        """Flight-recorder sections in machine order (absent ones skipped)."""
        return [m.metrics for m in self.machines if m.metrics is not None]

    @property
    def profiles(self) -> dict[str, dict]:
        """Per-machine hot-path profiler snapshots (empty when disabled)."""
        return {m.name: m.profile for m in self.machines if m.profile}

    @property
    def total_replayed(self) -> int:
        return sum(m.outcome.replayed_records for m in self.machines)

    @property
    def total_skipped(self) -> int:
        return sum(m.outcome.skipped_records for m in self.machines)

    @property
    def total_divergences(self) -> int:
        return sum(m.outcome.total_divergences for m in self.machines)


def _replay_task(task: ReplayTask, events_queue=None) -> dict:
    """Worker entry point: replay one archive file, return a payload."""
    source = load_collector(Path(task.path))
    replayed = replay_collector(source, task.index, task.config)
    if events_queue is not None:
        events_queue.put({
            "event": "replay-machine-done",
            "machine": replayed.name,
            "index": task.index,
            "records": replayed.outcome.source_records,
            "skipped": replayed.outcome.skipped_records,
            "divergences": replayed.outcome.total_divergences,
        })
    return {
        "index": replayed.index,
        "name": replayed.name,
        "category": replayed.category,
        "collector": pack_collector(replayed.collector),
        "outcome": replayed.outcome.to_dict(),
        "counters": dict(replayed.counters),
        "perf": replayed.perf,
        "metrics": replayed.metrics,
        "profile": replayed.profile,
    }


def _machine_from_payload(payload: dict) -> ReplayedMachine:
    return ReplayedMachine(
        index=payload["index"],
        name=payload["name"],
        category=payload["category"],
        collector=unpack_collector(payload["collector"]),
        outcome=ReplayOutcome.from_dict(payload["outcome"]),
        counters=payload["counters"],
        perf=payload["perf"],
        metrics=payload["metrics"],
        profile=payload["profile"])


def replay_archive(directory: Path | str,
                   config: ReplayConfig = ReplayConfig(),
                   telemetry: Optional[StudyTelemetry] = None
                   ) -> ReplayResult:
    """Replay every ``.nttrace`` archive under ``directory``.

    ``config.workers`` selects the execution shape: ``None`` replays
    machines serially in-process; an int fans out over that many worker
    processes (0 = one per CPU core).  Both shapes produce identical
    results for the same config.
    """
    paths = study_paths(Path(directory))
    tasks = [ReplayTask(index=i, path=str(path), config=config)
             for i, path in enumerate(paths)]
    if telemetry is not None:
        telemetry.emit("replay-start", mode=config.mode,
                       n_machines=len(tasks),
                       workers=config.workers if config.workers is not None
                       else "serial")
    if config.workers is None:
        machines = []
        for task in tasks:
            source = load_collector(Path(task.path))
            replayed = replay_collector(source, task.index, config)
            machines.append(replayed)
            if telemetry is not None:
                telemetry.emit(
                    "replay-machine-done", machine=replayed.name,
                    index=task.index,
                    records=replayed.outcome.source_records,
                    skipped=replayed.outcome.skipped_records,
                    divergences=replayed.outcome.total_divergences)
    else:
        n_workers = resolve_workers(config.workers, len(tasks))
        payloads = run_pool(_replay_task, tasks, n_workers, telemetry,
                            describe=lambda task: task.machine_name)
        machines = [_machine_from_payload(p) for p in payloads]
    result = ReplayResult(machines, config.mode)
    if telemetry is not None:
        telemetry.emit("replay-done", mode=config.mode,
                       n_machines=len(machines),
                       replayed=result.total_replayed,
                       skipped=result.total_skipped,
                       divergences=result.total_divergences)
    return result
