"""What-if sweeps: replay one archived study across a device×cache grid.

The replay engine turns an archive into a controlled experiment: the
injected request stream is fixed, so any latency difference between two
replays is caused by the configuration delta alone.  This module runs
that experiment as a grid — every combination of storage personality
(:data:`~repro.nt.storage.devices.PERSONALITIES`) and cache size — and
reduces each cell to the comparison the paper's figures invite:

* the fig-13/14 latency bands (count, mean, p50/p90/p99) of the four
  data-path series, from the cell's merged perf histograms;
* the span critical-path decomposition, with device time as its own
  share, showing *where* the latency moved when the device changed;
* the what-if shadow-cache hit/miss deltas across cache sizes;
* per-device queue/busy accounting from the storage driver.

Every cell also runs the closed-loop fidelity check: the replay's core
operation counts must reconcile exactly with the source archive —
a device model may move time, never operations.

Cells replay sequentially; within a cell the archive's machines fan out
through :func:`repro.replay.runner.replay_archive`, i.e. over the same
``run_pool`` process pool the study engine uses.  Reports carry no wall
clock, so a sweep is byte-identical across reruns and across serial vs
``--workers`` execution.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.attribution import critical_path_table
from repro.analysis.fidelity import fidelity_report
from repro.nt.perf import _hist_from_dict, merge_snapshots
from repro.nt.storage.devices import PERSONALITIES
from repro.nt.tracing.store import iter_trace_records, study_paths
from repro.replay.engine import ReplayConfig
from repro.replay.runner import ReplayResult, replay_archive
from repro.workload.study import StudyTelemetry

GRID_DIMENSIONS = ("devices", "cache_mb")

# The fig-13/14 data-path series, as named in the perf registry.
_LATENCY_SERIES = (
    "io.irp.latency.read",
    "io.irp.latency.write",
    "io.fastio.latency.read",
    "io.fastio.latency.write",
)


def parse_grid(spec: str) -> dict:
    """Parse ``devices=hdd_ide,ssd×cache_mb=4,16,64`` into dimensions.

    Dimension chunks are separated by ``×`` (or ASCII ``*`` / ``;``),
    values by commas.  Device names must exist in PERSONALITIES; cache
    sizes are megabytes.  A dimension may be omitted, leaving that axis
    at the replay default.
    """
    dims: dict = {}
    normalized = spec.replace("×", ";").replace("*", ";")
    for chunk in normalized.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        key, sep, values = chunk.partition("=")
        key = key.strip()
        if not sep or key not in GRID_DIMENSIONS:
            raise ValueError(
                f"bad grid dimension {chunk!r}; expected "
                f"{' / '.join(f'{d}=v1,v2' for d in GRID_DIMENSIONS)}")
        if key in dims:
            raise ValueError(f"grid dimension {key!r} given twice")
        items = [v.strip() for v in values.split(",") if v.strip()]
        if not items:
            raise ValueError(f"grid dimension {key!r} has no values")
        if key == "devices":
            for name in items:
                if name not in PERSONALITIES:
                    raise ValueError(
                        f"unknown storage personality {name!r}; expected "
                        f"one of {sorted(PERSONALITIES)}")
            dims[key] = items
        else:
            dims[key] = [float(v) for v in items]
    if not dims:
        raise ValueError("empty grid")
    return dims


@dataclass(frozen=True)
class GridCell:
    """One configuration point of the sweep."""

    device: Optional[str]
    cache_mb: Optional[float]

    @property
    def label(self) -> str:
        parts = []
        if self.device is not None:
            parts.append(self.device)
        if self.cache_mb is not None:
            parts.append(f"cache{self.cache_mb:g}mb")
        return "+".join(parts) if parts else "baseline"


def grid_cells(dims: dict) -> list[GridCell]:
    """The cell list, devices-major in the order the spec listed values."""
    devices = dims.get("devices") or [None]
    caches = dims.get("cache_mb") or [None]
    return [GridCell(device, cache)
            for device in devices for cache in caches]


def _band(hist_dict: dict, name: str) -> dict:
    hist = _hist_from_dict(name, hist_dict)
    if not hist.count:
        # Keep empty series JSON-clean (mean/quantile are NaN on zero
        # samples, which would poison the byte-compared report).
        return {"count": 0, "mean_micros": 0.0, "p50_micros": 0.0,
                "p90_micros": 0.0, "p99_micros": 0.0}
    return {
        "count": hist.count,
        "mean_micros": hist.mean_micros,
        "p50_micros": hist.quantile_micros(0.50),
        "p90_micros": hist.quantile_micros(0.90),
        "p99_micros": hist.quantile_micros(0.99),
    }


def _cell_report(cell: GridCell, result: ReplayResult,
                 source_paths: Sequence[Path]) -> dict:
    """Reduce one cell's ReplayResult to its deterministic report dict."""
    report = fidelity_report(
        [(machine.name, iter_trace_records(path), machine.collector.records,
          machine.outcome.to_dict())
         for path, machine in zip(source_paths, result.machines)],
        mode=result.mode)
    merged = merge_snapshots(machine.perf for machine in result.machines)
    counters = merged.get("counters", {})
    bands = {name: _band(merged["histograms"][name], name)
             for name in _LATENCY_SERIES
             if name in merged.get("histograms", {})}
    storage: dict = {"requests": 0, "busy_ticks": 0, "wait_ticks": 0}
    for name, value in counters.items():
        for key in storage:
            if name.startswith("storage.") and name.endswith(f".{key}"):
                storage[key] += value
    hits = counters.get("cc.whatif.read_hits", 0)
    misses = counters.get("cc.whatif.read_misses", 0)
    cache = {
        "read_hits": hits,
        "read_misses": misses,
        "hit_rate": hits / (hits + misses) if hits + misses else 1.0,
        "pages_evicted": counters.get("cc.whatif.pages_evicted", 0),
    }
    return {
        "label": cell.label,
        "device": cell.device,
        "cache_mb": cell.cache_mb,
        "core_match": report.all_core_match,
        "mismatched_machines": [m.name for m in report.machines
                                if not m.core_match],
        "replayed_records": sum(len(m.collector.records)
                                for m in result.machines),
        "latency_bands": bands,
        "critical_path": critical_path_table(result.collectors).to_dict(),
        "cache": cache,
        "storage": storage,
    }


@dataclass
class WhatifReport:
    """The sweep's comparison report (deterministic, JSON-serialisable)."""

    grid: dict
    cells: list[dict]
    n_machines: int
    mode: str

    @property
    def all_core_match(self) -> bool:
        return all(cell["core_match"] for cell in self.cells)

    def to_dict(self) -> dict:
        return {
            "format": "nt-whatif-1",
            "grid": self.grid,
            "n_machines": self.n_machines,
            "mode": self.mode,
            "all_core_match": self.all_core_match,
            "cells": self.cells,
            # The CI smoke contract: a compact block that is a pure
            # function of (archive, grid, seed), compared byte-for-byte
            # against the committed BENCH_whatif.json baseline.
            "deterministic": self.deterministic_block(),
        }

    def deterministic_block(self) -> dict:
        cells = []
        for cell in self.cells:
            reads = cell["latency_bands"].get("io.irp.latency.read", {})
            cells.append({
                "label": cell["label"],
                "core_match": cell["core_match"],
                "replayed_records": cell["replayed_records"],
                "irp_read_count": reads.get("count", 0),
                "irp_read_mean_micros": reads.get("mean_micros", 0.0),
                "device_busy_ticks": cell["storage"]["busy_ticks"],
                "device_wait_ticks": cell["storage"]["wait_ticks"],
                "cache_read_hits": cell["cache"]["read_hits"],
                "cache_read_misses": cell["cache"]["read_misses"],
            })
        return {"grid": self.grid, "cells": cells}

    def format(self) -> str:
        """Operator-facing comparison tables, one block per cell."""
        title = (f"What-if sweep: {len(self.cells)} cells × "
                 f"{self.n_machines} machines ({self.mode}-loop)")
        lines = [title, "=" * len(title)]
        for cell in self.cells:
            lines.append("")
            header = f"cell {cell['label']}"
            lines.append(header)
            lines.append("-" * len(header))
            verdict = ("exact" if cell["core_match"]
                       else "MISMATCH: " + ", ".join(
                           cell["mismatched_machines"]))
            lines.append(f"  core-count reconciliation: {verdict}   "
                         f"records: {cell['replayed_records']:,}")
            lines.append(f"  {'series':<24} {'n':>9} {'mean µs':>9} "
                         f"{'p50 µs':>9} {'p90 µs':>10} {'p99 µs':>10}")
            for name in _LATENCY_SERIES:
                band = cell["latency_bands"].get(name)
                if band is None:
                    continue
                lines.append(
                    f"  {name:<24} {band['count']:>9,} "
                    f"{band['mean_micros']:>9.1f} "
                    f"{band['p50_micros']:>9.1f} "
                    f"{band['p90_micros']:>10.1f} "
                    f"{band['p99_micros']:>10.1f}")
            lines.append(f"  {'path kind':<14} {'n':>9} {'total µs':>9} "
                         f"{'self µs':>9} {'device µs':>10} "
                         f"{'overlap µs':>11}")
            for row in cell["critical_path"]["kinds"]:
                lines.append(
                    f"  {row['kind']:<14} {row['n']:>9,} "
                    f"{row['mean_total_micros']:>9.1f} "
                    f"{row['mean_self_micros']:>9.1f} "
                    f"{row['mean_device_micros']:>10.1f} "
                    f"{row['mean_overlapped_micros']:>11.1f}")
            cache = cell["cache"]
            lines.append(
                f"  cache: hit rate {cache['hit_rate']:.1%} "
                f"({cache['read_hits']:,} hits / "
                f"{cache['read_misses']:,} misses, "
                f"{cache['pages_evicted']:,} pages evicted)")
            storage = cell["storage"]
            lines.append(
                f"  device: {storage['requests']:,} transfers, "
                f"busy {storage['busy_ticks']:,} ticks, "
                f"queued {storage['wait_ticks']:,} ticks")
        status = "exact in every cell" if self.all_core_match \
            else "MISMATCH in some cells"
        lines.append("")
        lines.append(f"  closed-loop core counts: {status}")
        return "\n".join(lines)


def whatif_sweep(directory: Path | str, grid: dict,
                 base_config: ReplayConfig = ReplayConfig(),
                 telemetry: Optional[StudyTelemetry] = None
                 ) -> WhatifReport:
    """Replay the archived study once per grid cell and compare.

    Each cell derives its ReplayConfig from ``base_config`` (mode, seed,
    workers, ...) plus the cell's device/cache override, with spans
    enabled so the critical-path decomposition sees device time.
    """
    directory = Path(directory)
    source_paths = study_paths(directory)
    cells = grid_cells(grid)
    reports: list[dict] = []
    for cell in cells:
        if telemetry is not None:
            telemetry.emit("whatif-cell-start", cell=cell.label)
        config = replace(base_config, storage=cell.device,
                         cache_mb=cell.cache_mb, spans_enabled=True)
        result = replay_archive(directory, config, telemetry)
        reports.append(_cell_report(cell, result, source_paths))
        if telemetry is not None:
            telemetry.emit("whatif-cell-done", cell=cell.label,
                           core_match=reports[-1]["core_match"])
    return WhatifReport(grid=grid, cells=reports,
                        n_machines=len(source_paths),
                        mode=base_config.mode)
