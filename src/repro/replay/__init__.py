"""Trace replay: re-drive archived ``.nttrace`` studies through the
simulator and measure how faithfully the second-generation trace matches
the first (see :mod:`repro.replay.engine` for the replay semantics and
:mod:`repro.analysis.fidelity` for the diff)."""

from repro.nt.io.initiator import ReplayInitiator, ReplayOutcome
from repro.replay.engine import (
    ReplayConfig,
    ReplayedMachine,
    build_replay_machine,
    replay_collector,
)
from repro.replay.runner import ReplayResult, ReplayTask, replay_archive

__all__ = [
    "ReplayConfig",
    "ReplayInitiator",
    "ReplayOutcome",
    "ReplayResult",
    "ReplayTask",
    "ReplayedMachine",
    "build_replay_machine",
    "replay_archive",
    "replay_collector",
]
