"""Trace replay: re-drive archived ``.nttrace`` studies through the
simulator and measure how faithfully the second-generation trace matches
the first (see :mod:`repro.replay.engine` for the replay semantics and
:mod:`repro.analysis.fidelity` for the diff)."""

from repro.nt.io.initiator import ReplayInitiator, ReplayOutcome
from repro.replay.engine import (
    ReplayConfig,
    ReplayedMachine,
    build_replay_machine,
    replay_collector,
)
from repro.replay.runner import ReplayResult, ReplayTask, replay_archive
from repro.replay.whatif import (
    GridCell,
    WhatifReport,
    grid_cells,
    parse_grid,
    whatif_sweep,
)

__all__ = [
    "GridCell",
    "ReplayConfig",
    "ReplayInitiator",
    "ReplayOutcome",
    "ReplayResult",
    "ReplayTask",
    "ReplayedMachine",
    "WhatifReport",
    "build_replay_machine",
    "grid_cells",
    "parse_grid",
    "replay_archive",
    "replay_collector",
    "whatif_sweep",
]
