"""Flag and disposition enumerations shared across the I/O stack.

These mirror the Windows NT 4.0 definitions closely enough that the trace
records carry the same semantics the paper's instrumentation logged (create
options, file attributes, IRP header flags, file-object state bits).
"""

from __future__ import annotations

import enum


class FileAccess(enum.IntFlag):
    """Desired-access mask for CreateFile / IRP_MJ_CREATE."""

    NONE = 0
    READ_DATA = 0x0001
    WRITE_DATA = 0x0002
    APPEND_DATA = 0x0004
    READ_ATTRIBUTES = 0x0080
    WRITE_ATTRIBUTES = 0x0100
    DELETE = 0x10000
    SYNCHRONIZE = 0x100000

    GENERIC_READ = READ_DATA | READ_ATTRIBUTES | SYNCHRONIZE
    GENERIC_WRITE = WRITE_DATA | APPEND_DATA | WRITE_ATTRIBUTES | SYNCHRONIZE
    GENERIC_ALL = GENERIC_READ | GENERIC_WRITE | DELETE


class ShareMode(enum.IntFlag):
    """Sharing mode requested at open time."""

    NONE = 0
    READ = 0x1
    WRITE = 0x2
    DELETE = 0x4
    ALL = READ | WRITE | DELETE


class CreateDisposition(enum.IntEnum):
    """NT create dispositions (what to do if the file does / does not exist).

    Win32 maps onto these: CREATE_NEW -> CREATE, CREATE_ALWAYS -> OVERWRITE_IF,
    OPEN_EXISTING -> OPEN, OPEN_ALWAYS -> OPEN_IF,
    TRUNCATE_EXISTING -> OVERWRITE.
    """

    SUPERSEDE = 0
    OPEN = 1
    CREATE = 2
    OPEN_IF = 3
    OVERWRITE = 4
    OVERWRITE_IF = 5


class CreateOptions(enum.IntFlag):
    """Create-option bits carried by IRP_MJ_CREATE."""

    NONE = 0
    DIRECTORY_FILE = 0x00000001
    WRITE_THROUGH = 0x00000010
    SEQUENTIAL_ONLY = 0x00000004
    NO_INTERMEDIATE_BUFFERING = 0x00000008
    RANDOM_ACCESS = 0x00000800
    NON_DIRECTORY_FILE = 0x00000040
    DELETE_ON_CLOSE = 0x00001000
    OPEN_FOR_BACKUP_INTENT = 0x00004000


class FileAttributes(enum.IntFlag):
    """Attributes stored with a file (and specifiable at create time)."""

    NORMAL = 0x0080
    READONLY = 0x0001
    HIDDEN = 0x0002
    SYSTEM = 0x0004
    DIRECTORY = 0x0010
    ARCHIVE = 0x0020
    TEMPORARY = 0x0100
    COMPRESSED = 0x0800


class IrpFlags(enum.IntFlag):
    """Header flags on an I/O request packet.

    ``PAGING_IO`` is the bit the paper's §3.3 keys on to separate VM-manager
    traffic from direct requests; ``SYNCHRONOUS_PAGING_IO`` marks lazy-writer
    and image-load activity issued synchronously by the VM manager.
    """

    NONE = 0
    NOCACHE = 0x00000001
    PAGING_IO = 0x00000002
    SYNCHRONOUS_API = 0x00000004
    SYNCHRONOUS_PAGING_IO = 0x00000040
    WRITE_THROUGH = 0x00000080


class FileObjectFlags(enum.IntFlag):
    """State bits on a file object (the per-open kernel object).

    A subset of the real FO_* flags: the ones the cache manager, the VM
    manager, and the analysis in the paper actually care about.
    """

    NONE = 0
    WRITE_THROUGH = 0x00000010
    SEQUENTIAL_ONLY = 0x00000020
    NO_INTERMEDIATE_BUFFERING = 0x00000040
    CACHE_SUPPORTED = 0x00000080
    TEMPORARY_FILE = 0x00000100
    DELETE_ON_CLOSE = 0x00000200
    RANDOM_ACCESS = 0x00000400
    CLEANUP_COMPLETE = 0x00001000
