"""NTSTATUS codes used by the simulated I/O subsystem.

Values match the real NT status codes so traces read familiarly; only the
subset the file-system stack can actually return is defined.
"""

from __future__ import annotations

import enum


class NtStatus(enum.IntEnum):
    """Completion status of an I/O request."""

    SUCCESS = 0x00000000
    PENDING = 0x00000103

    # Informational / warning class.
    BUFFER_OVERFLOW = 0x80000005
    NO_MORE_FILES = 0x80000006

    # Error class.
    INVALID_PARAMETER = 0xC000000D
    END_OF_FILE = 0xC0000011
    ACCESS_DENIED = 0xC0000022
    OBJECT_NAME_NOT_FOUND = 0xC0000034
    OBJECT_NAME_COLLISION = 0xC0000035
    OBJECT_PATH_NOT_FOUND = 0xC000003A
    SHARING_VIOLATION = 0xC0000043
    DELETE_PENDING = 0xC0000056
    DISK_FULL = 0xC000007F
    FILE_IS_A_DIRECTORY = 0xC00000BA
    NOT_SAME_DEVICE = 0xC00000D4
    DIRECTORY_NOT_EMPTY = 0xC0000101
    NOT_A_DIRECTORY = 0xC0000103
    CANNOT_DELETE = 0xC0000121
    FILE_DELETED = 0xC0000123
    MEDIA_WRITE_PROTECTED = 0xC00000A2
    INVALID_DEVICE_REQUEST = 0xC0000010
    NOT_SUPPORTED = 0xC00000BB

    @property
    def is_success(self) -> bool:
        """True for the success and informational classes (severity < error)."""
        return self.value < 0xC0000000

    @property
    def is_error(self) -> bool:
        """True for the error class."""
        return self.value >= 0xC0000000
