"""Simulated time base.

The paper's trace driver timestamped every record twice (request start and
completion) with a 100-nanosecond granularity.  The simulator therefore keeps
time as an integer count of 100 ns *ticks*, which makes runs deterministic
and avoids any floating-point drift across millions of events.
"""

from __future__ import annotations

TICKS_PER_MICROSECOND = 10
TICKS_PER_MILLISECOND = 10_000
TICKS_PER_SECOND = 10_000_000


def ticks_from_seconds(seconds: float) -> int:
    """Convert seconds to integer ticks (rounded to nearest tick)."""
    return int(round(seconds * TICKS_PER_SECOND))


def ticks_from_millis(millis: float) -> int:
    """Convert milliseconds to integer ticks (rounded to nearest tick)."""
    return int(round(millis * TICKS_PER_MILLISECOND))


def ticks_from_micros(micros: float) -> int:
    """Convert microseconds to integer ticks (rounded to nearest tick)."""
    return int(round(micros * TICKS_PER_MICROSECOND))


def seconds_from_ticks(ticks: int) -> float:
    """Convert ticks to seconds."""
    return ticks / TICKS_PER_SECOND


def millis_from_ticks(ticks: int) -> float:
    """Convert ticks to milliseconds."""
    return ticks / TICKS_PER_MILLISECOND


def micros_from_ticks(ticks: int) -> float:
    """Convert ticks to microseconds."""
    return ticks / TICKS_PER_MICROSECOND


class SimClock:
    """A monotonically non-decreasing simulated clock.

    The clock only moves forward.  Code that performs work calls
    :meth:`advance` with the duration of that work; schedulers that need to
    jump to an absolute time use :meth:`advance_to`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before time zero")
        self._now = int(start)

    @property
    def now(self) -> int:
        """Current time in 100 ns ticks."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current time in seconds."""
        return seconds_from_ticks(self._now)

    def advance(self, ticks: int) -> int:
        """Move the clock forward by ``ticks`` and return the new time.

        Negative durations are rejected: simulated work cannot take negative
        time, and allowing it would break the monotonicity every consumer of
        trace timestamps relies on.
        """
        if ticks < 0:
            raise ValueError(f"cannot advance clock by negative ticks: {ticks}")
        self._now += int(ticks)
        return self._now

    def advance_to(self, when: int) -> int:
        """Move the clock forward to absolute time ``when`` if it is later.

        Moving to a time that has already passed is a no-op rather than an
        error, so schedulers can dispatch slightly-stale timer events without
        special-casing.
        """
        if when > self._now:
            self._now = int(when)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now} ticks, {self.now_seconds:.6f}s)"
