"""Fuzzy sequential-offset comparison (§9.1).

The cache manager's read-ahead predictor masks the lowest 7 bits when
comparing a request's offset with the previous request's end, so a read
starting within 128 bytes still counts as sequential.  The same
comparison is used on the analysis side to classify access patterns
(§6.2), so the helper lives in the dependency-free bottom layer where
both the kernel (:mod:`repro.nt.cache.readahead`) and the analysis
(:mod:`repro.analysis.sessions`) can share one definition.
"""

from __future__ import annotations

# The cache manager masks the lowest 7 bits when comparing offsets, so a
# read starting within 128 bytes of the previous end still counts as
# sequential (§9.1).
SEQUENTIAL_FUZZ_MASK = ~0x7F


def fuzzy_sequential(previous_end: int, offset: int) -> bool:
    """True when ``offset`` continues ``previous_end`` under the 7-bit mask."""
    return (offset & SEQUENTIAL_FUZZ_MASK) == (previous_end & SEQUENTIAL_FUZZ_MASK)
