"""Shared substrate: simulation clock, NT status codes, flags, and errors.

Everything in the simulator is expressed in 100-nanosecond *ticks*, the
granularity the paper's trace driver used for its dual timestamps.
"""

from repro.common.clock import (
    SimClock,
    TICKS_PER_MICROSECOND,
    TICKS_PER_MILLISECOND,
    TICKS_PER_SECOND,
    ticks_from_seconds,
    ticks_from_millis,
    ticks_from_micros,
    seconds_from_ticks,
    millis_from_ticks,
    micros_from_ticks,
)
from repro.common.status import NtStatus
from repro.common.flags import (
    FileAccess,
    FileAttributes,
    CreateDisposition,
    CreateOptions,
    ShareMode,
    IrpFlags,
    FileObjectFlags,
)

__all__ = [
    "SimClock",
    "TICKS_PER_MICROSECOND",
    "TICKS_PER_MILLISECOND",
    "TICKS_PER_SECOND",
    "ticks_from_seconds",
    "ticks_from_millis",
    "ticks_from_micros",
    "seconds_from_ticks",
    "millis_from_ticks",
    "micros_from_ticks",
    "NtStatus",
    "FileAccess",
    "FileAttributes",
    "CreateDisposition",
    "CreateOptions",
    "ShareMode",
    "IrpFlags",
    "FileObjectFlags",
]
