"""Paper-scale streaming campaigns: simulate, fold, discard.

``repro run`` archives every machine's trace and the analysis loads them
all back — fine at seed scale, impossible at the paper's (45 machines,
4 weeks, ~190M records).  A *campaign* instead streams each machine's
trace through the one-pass folds of :mod:`repro.analysis.streaming` the
moment it finishes simulating, keeps only the bounded-memory
:class:`~repro.analysis.streaming.StatsSketch` plus one small integer
row per machine, and discards the collector.  Peak memory is flat in
machine count, which the CI ``study-smoke`` job gates with a
``tracemalloc`` budget at 100 machines.

Determinism mirrors the study engine's: machine seeds derive from
``(config.seed, index)`` alone, sketch merges are commutative integer
operations, and the parallel path ships per-machine *sketches* (not
collectors) back from the workers and merges them in index order — so
serial and ``--workers K`` campaigns produce byte-identical ``nt-study-1``
artifacts, and the property tests merge shards in shuffled orders to the
same bytes.

:class:`CampaignConsole` is the live view: one line per machine with
records/sec, the storage queue-depth and cache dirty-page watermarks
(the ``storage.*.queue_depth_max`` / ``cc.dirty_pages_peak`` perf gauges
the flight recorder also samples), and the phase ETA.  Wall-clock only
ever reaches the console and the bench payload's non-deterministic
block — never the artifact.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from typing import Optional, TextIO

from repro.analysis.streaming import StatsSketch, fold_collector
from repro.common.clock import ticks_from_seconds
from repro.workload.study import (
    StudyConfig,
    StudyTelemetry,
    _assign_categories,
    simulate_machine,
)

ARTIFACT_FORMAT = "nt-study-1"
BENCH_FORMAT = "nt-study-bench-1"
ARTIFACT_FILENAME = "study.json"


def _watermarks(perf_snapshot: dict) -> tuple[int, int]:
    """(queue-depth peak, dirty-page peak) from one machine's perf
    snapshot — the two flight-recorder watermark gauges."""
    gauges = perf_snapshot.get("gauges", {})
    queue = 0
    for name, value in gauges.items():
        if name.startswith("storage.") and name.endswith(".queue_depth_max"):
            queue = max(queue, int(value))
    return queue, int(gauges.get("cc.dirty_pages_peak", 0))


def _fmt_eta(seconds: float) -> str:
    seconds = max(0, int(round(seconds)))
    if seconds < 60:
        return f"{seconds}s"
    minutes, secs = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class CampaignConsole(StudyTelemetry):
    """Live campaign progress: one line per machine as it folds.

    Subclasses :class:`StudyTelemetry` so worker events flow through the
    same queue-drain path as study runs, but renders its own compact
    lines instead of raw ``key=value`` telemetry::

        [study  12/100] m11-personal      15,023 rec   52,001 rec/s  queue^7  dirty^412  eta 38s
    """

    def __init__(self, n_machines: int,
                 stream: Optional[TextIO] = None,
                 quiet: bool = False) -> None:
        super().__init__(stream=stream if stream is not None else sys.stderr,
                         verbose=False)
        self.n_machines = n_machines
        self.quiet = quiet
        self.n_folded = 0
        self.records_folded = 0
        self._started = time.perf_counter()

    def _say(self, line: str) -> None:
        if not self.quiet:
            with self._lock:
                self.stream.write(line + "\n")
                self.stream.flush()

    def machine_folded(self, index: int, name: str, records: int,
                       queue_peak: int, dirty_peak: int) -> None:
        """One machine's trace has been folded into the sketch."""
        self.n_folded += 1
        self.records_folded += records
        elapsed = time.perf_counter() - self._started
        rate = self.records_folded / elapsed if elapsed > 0 else 0.0
        remaining = self.n_machines - self.n_folded
        eta = (elapsed / self.n_folded * remaining) if self.n_folded else 0.0
        self.emit("machine-folded", machine=name, index=index,
                  records=records, queue_depth_peak=queue_peak,
                  dirty_pages_peak=dirty_peak)
        self._say(
            f"[study {self.n_folded:3d}/{self.n_machines}] {name:<20} "
            f"{records:>10,} rec {rate:>10,.0f} rec/s  "
            f"queue^{queue_peak} dirty^{dirty_peak}  eta {_fmt_eta(eta)}")

    def campaign_done(self, sketch: StatsSketch,
                      wall_seconds: float) -> None:
        self.emit("campaign-done", machines=sketch.n_machines,
                  records=sketch.n_records,
                  wall_seconds=wall_seconds)
        rate = sketch.n_records / wall_seconds if wall_seconds else 0.0
        self._say(
            f"[study done] {sketch.n_machines} machines  "
            f"{sketch.n_records:,} records  "
            f"{sketch.n_instances:,} instances  "
            f"{rate:,.0f} rec/s  wall {_fmt_eta(wall_seconds)}")


@dataclass
class CampaignResult:
    """Everything a streaming campaign keeps: sketch + small rows."""

    sketch: StatsSketch
    config: StudyConfig
    duration_ticks: int
    # Deterministic per-machine rows, in machine index order.
    machine_rows: list[dict] = field(default_factory=list)
    # Per-machine PerfRegistry snapshots (deterministic), machine order.
    perf: dict[str, dict] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def total_records(self) -> int:
        return self.sketch.n_records

    def perf_aggregate(self) -> dict:
        from repro.nt.perf import merge_snapshots
        return merge_snapshots(self.perf.values())


def _machine_row(index: int, name: str, category: str, records: int,
                 perf_snapshot: dict) -> dict:
    queue_peak, dirty_peak = _watermarks(perf_snapshot)
    return {"index": index, "name": name, "category": category,
            "records": records, "queue_depth_peak": queue_peak,
            "dirty_pages_peak": dirty_peak}


def _fold_campaign_task(task, events_queue=None) -> dict:
    """Worker entry point: simulate one machine and return its *sketch*.

    Unlike the study engine's ``_simulate_task``, the collector never
    crosses the process boundary — the worker folds it locally and ships
    the bounded-size partial sketch, so a paper-scale parallel campaign
    moves kilobytes per machine, not the whole trace.
    """
    from repro.workload.parallel import _QueueTelemetry

    telemetry = (_QueueTelemetry(events_queue)
                 if events_queue is not None else None)
    artifact = simulate_machine(task.config, task.index, task.category_name,
                                task.n_total, telemetry=telemetry)
    part = StatsSketch()
    fold_collector(part, task.index, task.category_name, artifact.collector)
    return {
        "index": task.index,
        "name": artifact.name,
        "category": task.category_name,
        "records": len(artifact.collector),
        "perf": artifact.perf,
        "sketch": part.to_dict(),
    }


def run_campaign(config: StudyConfig,
                 console: Optional[CampaignConsole] = None
                 ) -> CampaignResult:
    """Run a streaming campaign: simulate → fold → discard, per machine.

    Serial (``config.workers is None``) folds each machine's collector
    the moment its simulation finishes and drops it before the next
    machine builds.  Parallel fans the simulate+fold unit out over
    worker processes and merges the partial sketches in machine index
    order.  Both paths produce byte-identical sketches — every merge is
    commutative, so order cannot matter (the shard-permutation property
    tests hold this).
    """
    started = time.perf_counter()
    sketch = StatsSketch()
    result = CampaignResult(
        sketch=sketch, config=config,
        duration_ticks=ticks_from_seconds(config.duration_seconds))
    if config.workers is not None:
        from repro.workload.parallel import (machine_tasks, resolve_workers,
                                             run_pool)
        tasks = machine_tasks(config)
        n_workers = resolve_workers(config.workers, len(tasks))
        payloads = run_pool(_fold_campaign_task, tasks, n_workers, console,
                            describe=lambda task: task.machine_name)
        for payload in payloads:
            sketch.merge(StatsSketch.from_dict(payload["sketch"]))
            row = _machine_row(payload["index"], payload["name"],
                               payload["category"], payload["records"],
                               payload["perf"])
            result.machine_rows.append(row)
            result.perf[payload["name"]] = payload["perf"]
            if console is not None:
                console.machine_folded(row["index"], row["name"],
                                       row["records"],
                                       row["queue_depth_peak"],
                                       row["dirty_pages_peak"])
    else:
        categories = _assign_categories(config)
        for index, category_name in enumerate(categories):
            artifact = simulate_machine(config, index, category_name,
                                        len(categories), telemetry=console)
            fold_collector(sketch, index, category_name, artifact.collector)
            row = _machine_row(index, artifact.name, category_name,
                               len(artifact.collector), artifact.perf)
            result.machine_rows.append(row)
            result.perf[artifact.name] = artifact.perf
            if console is not None:
                console.machine_folded(index, artifact.name,
                                       row["records"],
                                       row["queue_depth_peak"],
                                       row["dirty_pages_peak"])
            del artifact  # the whole point: one machine resident at a time
    result.wall_seconds = time.perf_counter() - started
    if console is not None:
        console.campaign_done(sketch, result.wall_seconds)
    return result


# --------------------------------------------------------------------- #
# The nt-study-1 report artifact.

def study_artifact_doc(result: CampaignResult) -> dict:
    """The deterministic ``nt-study-1`` document: study parameters, the
    full sketch, the per-machine watermark rows and the fleet-wide perf
    aggregate.  No wall-clock fields — two campaigns with the same
    parameters produce the same bytes regardless of worker count."""
    config = result.config
    return {
        "format": ARTIFACT_FORMAT,
        "study": {
            "machines": config.n_machines,
            "seconds": config.duration_seconds,
            "seed": config.seed,
            "scale": config.content_scale,
        },
        "machines": result.machine_rows,
        "perf_aggregate": result.perf_aggregate(),
        "sketch": result.sketch.to_dict(),
    }


def study_artifact_bytes(result: CampaignResult) -> bytes:
    return (json.dumps(study_artifact_doc(result), sort_keys=True,
                       indent=1) + "\n").encode("utf-8")


def load_study_artifact(path) -> tuple[dict, StatsSketch]:
    """Read an ``nt-study-1`` artifact; returns (document, sketch)."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"{path} is not an {ARTIFACT_FORMAT} artifact "
            f"(format={doc.get('format')!r})")
    return doc, StatsSketch.from_dict(doc["sketch"])


def bench_payload(result: CampaignResult, workers: Optional[int],
                  peak_traced_mb: Optional[float] = None) -> dict:
    """The CI ``BENCH_study.json`` payload.

    Everything under ``deterministic`` is a pure function of the study
    parameters; ``sketch_sha256`` pins the whole aggregate — a single
    drifted bucket anywhere flips it.  Wall-clock and memory live
    outside the block.
    """
    config = result.config
    rate = (result.total_records / result.wall_seconds
            if result.wall_seconds else float("nan"))
    return {
        "format": BENCH_FORMAT,
        "deterministic": {
            "machines": config.n_machines,
            "seconds": config.duration_seconds,
            "seed": config.seed,
            "scale": config.content_scale,
            "records": result.total_records,
            "instances": result.sketch.n_instances,
            "sketch_sha256": result.sketch.sha256(),
        },
        "workers": workers,
        "wall_seconds": result.wall_seconds,
        "records_per_second": rate,
        "peak_traced_mb": peak_traced_mb,
    }
