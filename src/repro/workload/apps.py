r"""Application behaviour models.

Each model reproduces a usage pattern the paper attributes to a real
application class:

* ``NotepadApp`` — the §1 save storm: failed existence probes, an
  overwrite, and extra open/close pairs around a tiny data transfer.
* ``ExplorerApp`` — the GUI's control-operation chatter: directory
  enumeration, attribute queries, volume checks (§7, §8.3).
* ``CompilerApp`` — the development workload whose 5–8 MB precompiled
  header / incremental-link files produced the paper's peak throughput
  (§6.1), plus the fast overwrite of freshly-written outputs (§6.3).
* ``WebBrowserApp`` — the WWW cache churn behind up to 90% of profile
  changes (§5): many small creates, quick overwrites and deletes.
* ``MailApp`` — read-write random access to mailbox files, including the
  flush-after-every-write anti-pattern (§9.2).
* ``WinlogonApp`` — profile download/upload at session start/end (§5).
* ``ServicesApp`` — long-held handles and the rare uncached/write-through
  opens that dominate the cache-disabled population (§9).
* ``JavaToolApp`` — 2–4-byte reads, thousands per class file (§10).
* ``BigBufferMailerApp`` — a single 4 MB write buffer (§10).
* ``ScientificApp`` — 100–300 MB files read in small portions through
  memory-mapped views (§6.1).
* ``DbAdminApp`` — database-style random I/O plus temporary files carrying
  the TEMPORARY attribute and delete-on-close (§6.3's 1%).

All parameters are drawn from heavy-tailed samplers so §7's statistics are
emergent.  A model's ``step`` performs one burst of operations (advancing
the simulated clock through the I/O it performs) and returns the absolute
tick at which it wants to run again, or None when the session ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.common.clock import (
    ticks_from_micros,
    ticks_from_millis,
    ticks_from_seconds,
)
from repro.common.flags import (
    CreateDisposition,
    CreateOptions,
    FileAccess,
    FileAttributes,
)
from repro.common.status import NtStatus
from repro.stats.distributions import Choice, LogNormal, Pareto
from repro.workload.content import ContentCatalog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nt.system import Machine, Process


class TailedChoice:
    """A discrete size preference with a Pareto tail.

    §8.2's request sizes concentrate on a few values (512 and 4096 bytes
    for reads) but §7 finds heavy tails in the buffer sizes too; a small
    tail probability supplies the power-law outliers.
    """

    def __init__(self, pairs, tail_probability: float, tail: Pareto,
                 tail_cap: float) -> None:
        self.choice = Choice(pairs)
        self.tail_probability = tail_probability
        self.tail = tail
        self.tail_cap = tail_cap

    def sample(self, rng: np.random.Generator) -> float:
        if rng.random() < self.tail_probability:
            return min(self.tail.sample(rng), self.tail_cap)
        return self.choice.sample(rng)


# Request-size preferences (§8.2): reads concentrate on 512 and 4096 bytes
# with very small and very large outliers; write sizes are more diverse in
# the sub-1024 range.
READ_SIZES = TailedChoice([
    (2, 2), (4, 2), (8, 2), (512, 30), (1024, 5), (4096, 29), (8192, 6),
    (16384, 5), (49152, 5), (65536, 8), (131072, 4), (262144, 2),
], tail_probability=0.08, tail=Pareto(1.3, 16384), tail_cap=4 * 1024 * 1024)
WRITE_SIZES = TailedChoice([
    (64, 6), (128, 7), (200, 4), (256, 8), (512, 9), (700, 5), (1024, 8),
    (2048, 6), (4096, 20), (8192, 8), (16384, 6), (65536, 8), (262144, 3),
    (1048576, 2),
], tail_probability=0.08, tail=Pareto(1.3, 8192), tail_cap=4 * 1024 * 1024)

# Heavy-tailed inter-burst think time (seconds) and session lengths.
_THINK = Pareto(alpha=1.4, xm=0.4)
_SESSION_STEPS = Pareto(alpha=1.5, xm=3.0)
_DLL_COUNT = Pareto(alpha=1.4, xm=2.0)


@dataclass
class AppContext:
    """Everything a running application model needs."""

    machine: "Machine"
    process: "Process"
    catalog: ContentCatalog
    rng: np.random.Generator
    drive: str = "C:"
    remote_prefix: str = ""
    remote_catalog: Optional[ContentCatalog] = None
    _unique: int = field(default=0)

    @property
    def win32(self):
        return self.machine.win32

    @property
    def now(self) -> int:
        return self.machine.clock.now

    def local(self, rel_path: str) -> str:
        return self.drive + rel_path

    def unique_name(self, prefix: str, ext: str) -> str:
        self._unique += 1
        return f"{prefix}{self.process.pid}_{self._unique:05d}.{ext}"

    # Small intra-burst gaps advance the clock directly (the CPU is busy
    # in the application between its requests).
    def pause_micros(self, micros: float) -> None:
        self.machine.clock.advance(ticks_from_micros(max(0.0, micros)))

    def pause_millis(self, millis: float) -> None:
        self.machine.clock.advance(ticks_from_millis(max(0.0, millis)))

    # ------------------------------------------------------------------ #
    # Composite operations.

    def read_whole(self, handle: int, chunk: int, max_ops: int = 4000) -> int:
        """Sequential whole-file read in fixed chunks; returns bytes read.

        Applications usually know the file size (from the open or a query)
        and stop at it; a small fraction reads until the end-of-file error
        instead, which is the paper's entire read-error population (§8.4).
        """
        w = self.win32
        fo = self.process.handles.get(handle)
        size = fo.node.size if fo is not None and fo.node is not None else None
        probe_eof = size is None or self.rng.random() < 0.02
        total = 0
        for _ in range(max_ops):
            if not probe_eof and size is not None and total >= size:
                break
            status, got = w.read_file(self.process, handle, chunk)
            if status.is_error or got == 0:
                break
            total += got
            self.pause_micros(float(self.rng.uniform(10, 60)))
        return total

    def write_stream(self, handle: int, total: int, chunk: int) -> int:
        """Sequential write of ``total`` bytes in ``chunk`` pieces.

        Writes arrive in batches of several requests (§8.2: 80% of write
        interarrivals are under 30 us), so the chunk is capped to keep at
        least a handful of requests per stream.
        """
        w = self.win32
        chunk = max(64, min(chunk, max(64, total // 12)))
        written = 0
        while written < total:
            piece = min(chunk, total - written)
            status, got = w.write_file(self.process, handle, piece)
            if status.is_error:
                break
            written += got
            self.pause_micros(float(self.rng.uniform(1, 8)))
        return written

    def close_all(self) -> None:
        """Close every handle the process still holds (process exit)."""
        for handle in list(self.process.handles):
            self.win32.close_handle(self.process, handle)


class AppModel:
    """Base application model."""

    name = "app.exe"
    interactive = False

    def __init__(self, ctx: AppContext) -> None:
        self.ctx = ctx
        self.steps_remaining = max(1, int(_SESSION_STEPS.sample(ctx.rng)))

    # -- lifecycle ------------------------------------------------------ #

    def on_start(self) -> None:
        """Process start: load the executable image and its DLLs (§3.3)."""
        ctx = self.ctx
        cat = ctx.catalog
        if cat.executables:
            exe = cat.pick(ctx.rng, cat.executables)
            ctx.win32.load_image(ctx.process, ctx.local(exe))
        n_dlls = min(len(cat.dlls), int(_DLL_COUNT.sample(ctx.rng)))
        for _ in range(n_dlls):
            dll = cat.pick(ctx.rng, cat.dlls, zipf_s=1.1)
            ctx.win32.load_image(ctx.process, ctx.local(dll))

    def on_exit(self) -> None:
        """Process exit: release whatever is still open."""
        self.ctx.close_all()
        self.ctx.process.alive = False

    def step(self) -> Optional[int]:
        """One burst; returns the next wake tick, or None when done."""
        if self.steps_remaining <= 0:
            return None
        self.steps_remaining -= 1
        self.burst()
        if self.steps_remaining <= 0:
            return None
        think = float(_THINK.sample(self.ctx.rng))
        return self.ctx.now + ticks_from_seconds(min(think, 600.0))

    def burst(self) -> None:
        raise NotImplementedError


class NotepadApp(AppModel):
    """Text editing with the famous 26-call save sequence (§1)."""

    name = "notepad.exe"
    interactive = True

    def burst(self) -> None:
        ctx = self.ctx
        w, p = ctx.win32, ctx.process
        cat = ctx.catalog
        if not cat.documents:
            return
        doc = ctx.local(ctx.catalog.pick(ctx.rng, cat.documents))
        # Open and read the document.
        status, handle = w.create_file(p, doc)
        if status.is_error or handle is None:
            return
        ctx.read_whole(handle, 4096)
        w.close_handle(p, handle)
        # "Think" while typing; then the save storm.
        ctx.pause_millis(float(ctx.rng.uniform(3, 40)))
        self._save_storm(doc)

    def _save_storm(self, doc: str) -> None:
        ctx = self.ctx
        w, p = ctx.win32, ctx.process
        # Three failed open attempts (existence probes on variants).
        for suffix in ("~", ".bak", ".sav"):
            status, handle = w.create_file(p, doc + suffix)
            if status.is_success and handle is not None:
                w.close_handle(p, handle)
        # Write to a temp file first.
        temp_path = ctx.local(
            ctx.catalog.temp_dir + "\\" + ctx.unique_name("note", "tmp"))
        status, handle = w.create_file(
            p, temp_path, access=FileAccess.GENERIC_WRITE,
            disposition=CreateDisposition.OVERWRITE_IF)
        if status.is_success and handle is not None:
            ctx.write_stream(handle, int(ctx.rng.uniform(200, 30_000)), 4096)
            w.close_handle(p, handle)
        # Overwrite the original (1 file overwrite).
        status, handle = w.create_file(
            p, doc, access=FileAccess.GENERIC_WRITE,
            disposition=CreateDisposition.OVERWRITE_IF)
        if status.is_success and handle is not None:
            ctx.write_stream(handle, int(ctx.rng.uniform(200, 30_000)), 4096)
            w.close_handle(p, handle)
        # Four additional open/close sequences (attribute chatter).
        w.get_file_attributes(p, doc)
        w.get_file_attributes(p, doc)
        status, handle = w.create_file(p, doc)
        if status.is_success and handle is not None:
            w.query_standard_information(p, handle)
            w.close_handle(p, handle)
        status, handle = w.create_file(p, doc)
        if status.is_success and handle is not None:
            w.close_handle(p, handle)
        # The temp file dies an explicit death shortly after its close.
        ctx.pause_millis(float(ctx.rng.uniform(50, 2500)))
        w.delete_file(p, temp_path)


class ExplorerApp(AppModel):
    """The GUI shell: almost pure control and directory traffic."""

    name = "explorer.exe"
    interactive = True

    def __init__(self, ctx: AppContext) -> None:
        super().__init__(ctx)
        # Explorer runs for the whole user session.
        self.steps_remaining = 10 ** 9
        self._watch_handle = None

    def burst(self) -> None:
        ctx = self.ctx
        w, p = ctx.win32, ctx.process
        cat = ctx.catalog
        for _ in range(int(ctx.rng.integers(1, 5))):
            if not cat.directories:
                break
            directory = ctx.local(
                cat.directories[int(ctx.rng.integers(len(cat.directories)))])
            # The shell probes for per-folder settings before enumerating;
            # these probes usually fail (§8.4's not-found population).
            if ctx.rng.random() < 0.4:
                status, handle = w.create_file(p, directory + r"\desktop.ini")
                if status.is_success and handle is not None:
                    w.close_handle(p, handle)
            w.find_files(p, directory, max_entries=512)
            ctx.pause_millis(float(ctx.rng.uniform(1, 15)))
        # Attribute queries on a handful of entries.
        pool = cat.documents or cat.executables
        for _ in range(int(ctx.rng.integers(1, 5))):
            if not pool:
                break
            w.get_file_attributes(p, ctx.local(ctx.catalog.pick(ctx.rng, pool)))
        if ctx.rng.random() < 0.3:
            w.get_disk_free_space(p, ctx.drive[0])
        # Keep a change notification armed on the directory being viewed
        # (the shell's auto-refresh mechanism).
        if ctx.rng.random() < 0.3 and cat.directories:
            if self._watch_handle is not None \
                    and self._watch_handle in p.handles:
                w.close_handle(p, self._watch_handle)
            directory = ctx.local(
                cat.directories[int(ctx.rng.integers(len(cat.directories)))])
            status, handle = w.create_file(
                p, directory, access=FileAccess.READ_ATTRIBUTES,
                disposition=CreateDisposition.OPEN,
                options=CreateOptions.DIRECTORY_FILE)
            if status.is_success and handle is not None:
                w.watch_directory(p, handle)
                self._watch_handle = handle
        # Occasionally read a .lnk / .ini-sized file; a few of these opens
        # carry the sequential-only hint on files far too small for it to
        # matter (§9.1: 99% of flagged files were under the read-ahead
        # unit, 80% under a page).
        if ctx.rng.random() < 0.6 and cat.documents:
            path = ctx.local(ctx.catalog.pick(ctx.rng, cat.documents))
            options = (CreateOptions.SEQUENTIAL_ONLY
                       if ctx.rng.random() < 0.08 else CreateOptions.NONE)
            status, handle = w.create_file(p, path, options=options)
            if status.is_success and handle is not None:
                ctx.read_whole(handle, 512, max_ops=10)
                w.close_handle(p, handle)


class CompilerApp(AppModel):
    """Build system: header storms, object writes, big dev-state files."""

    name = "cl.exe"

    def burst(self) -> None:
        ctx = self.ctx
        w, p = ctx.win32, ctx.process
        cat = ctx.catalog
        if not cat.sources or not cat.headers:
            return
        # Compile a translation unit: read the source and a heavy-tailed
        # number of headers, whole-file sequential.
        src = ctx.local(ctx.catalog.pick(ctx.rng, cat.sources))
        status, handle = w.create_file(p, src)
        if status.is_success and handle is not None:
            ctx.read_whole(handle, 4096)
            w.close_handle(p, handle)
        n_headers = min(len(cat.headers),
                        int(Pareto(1.3, 4.0).sample(ctx.rng)))
        for _ in range(n_headers):
            header = ctx.local(ctx.catalog.pick(ctx.rng, cat.headers, zipf_s=1.2))
            status, handle = w.create_file(p, header)
            if status.is_success and handle is not None:
                ctx.read_whole(handle, 4096)
                w.close_handle(p, handle)
        # Write the object file, then overwrite it moments later (a fixup
        # pass) — the §6.3 delete-by-overwrite population.
        if cat.objects:
            obj = ctx.local(ctx.catalog.pick(ctx.rng, cat.objects))
            # Probe with CREATE first (collision when the object exists),
            # then write; half the time a fixup pass overwrites the fresh
            # output within milliseconds (§6.3's overwrite population).
            status, handle = w.create_file(
                p, obj, access=FileAccess.GENERIC_WRITE,
                disposition=CreateDisposition.CREATE)
            if status.is_error:
                status, handle = w.create_file(
                    p, obj, access=FileAccess.GENERIC_WRITE,
                    disposition=CreateDisposition.OVERWRITE_IF)
            passes = 2 if ctx.rng.random() < 0.5 else 1
            for attempt in range(passes):
                if status.is_success and handle is not None:
                    size = int(LogNormal(14_000, 1.0).sample(ctx.rng))
                    ctx.write_stream(handle, size,
                                     int(WRITE_SIZES.sample(ctx.rng)))
                    w.close_handle(p, handle)
                if attempt + 1 < passes:
                    ctx.pause_millis(float(ctx.rng.uniform(0.5, 4.0)))
                    status, handle = w.create_file(
                        p, obj, access=FileAccess.GENERIC_WRITE,
                        disposition=CreateDisposition.OVERWRITE_IF)
        # Compiler temp files: created with the temporary attribute and
        # delete-on-close (§6.3's third deletion source — a 1% sliver).
        if ctx.rng.random() < 0.08:
            path = ctx.local(ctx.catalog.temp_dir + "\\" +
                             ctx.unique_name("cl", "tmp"))
            status, handle = w.create_file(
                p, path,
                access=FileAccess.GENERIC_READ | FileAccess.GENERIC_WRITE,
                disposition=CreateDisposition.CREATE,
                options=CreateOptions.DELETE_ON_CLOSE,
                attributes=FileAttributes.TEMPORARY)
            if status.is_success and handle is not None:
                ctx.write_stream(handle, int(ctx.rng.uniform(2048, 65536)),
                                 4096)
                w.close_handle(p, handle)
        # Periodically rewrite the precompiled header / incremental link
        # state: the 5–8 MB files behind the paper's peak throughput.
        if ctx.rng.random() < 0.3 and cat.dev_outputs:
            big = ctx.local(ctx.catalog.pick(ctx.rng, cat.dev_outputs))
            status, handle = w.create_file(p, big)
            if status.is_success and handle is not None:
                ctx.read_whole(handle, 65536, max_ops=130)
                w.close_handle(p, handle)
            status, handle = w.create_file(
                p, big, access=FileAccess.GENERIC_WRITE,
                disposition=CreateDisposition.OVERWRITE_IF)
            if status.is_success and handle is not None:
                size = int(ctx.rng.uniform(5e6, 8e6))
                ctx.write_stream(handle, size, 65536)
                w.close_handle(p, handle)


class WebBrowserApp(AppModel):
    """WWW-cache churn: the dominant source of profile changes (§5).

    Marked non-interactive: the browser's file traffic is issued by its
    cache-maintenance machinery, driven by page structure rather than by
    direct user input — the §7 argument for why >92% of accesses come from
    processes outside direct user control.
    """

    name = "iexplore.exe"
    interactive = False

    def burst(self) -> None:
        ctx = self.ctx
        w, p = ctx.win32, ctx.process
        cat = ctx.catalog
        cache_dir = cat.web_cache_dir
        if not cache_dir:
            return
        # One "page": create a few cache entries, revisit a few old ones.
        n_new = int(ctx.rng.integers(1, 6))
        for _ in range(n_new):
            ext = ["htm", "gif", "jpg", "css"][int(ctx.rng.integers(4))]
            # Occasionally reuse an existing cache name with CREATE, which
            # fails with a name collision (§8.4's 31% of open failures)
            # before falling back to an overwrite.
            if cat.web_cache and ctx.rng.random() < 0.4:
                path = ctx.local(ctx.catalog.pick(ctx.rng, cat.web_cache))
                status, handle = w.create_file(
                    p, path, access=FileAccess.GENERIC_WRITE,
                    disposition=CreateDisposition.CREATE)
                if status.is_error:
                    status, handle = w.create_file(
                        p, path, access=FileAccess.GENERIC_WRITE,
                        disposition=CreateDisposition.OVERWRITE_IF)
                if status.is_success and handle is not None:
                    size = int(LogNormal(5_000, 1.4).sample(ctx.rng))
                    ctx.write_stream(handle, size,
                                     int(WRITE_SIZES.sample(ctx.rng)))
                    w.close_handle(p, handle)
                continue
            path = ctx.local(cache_dir + "\\" + ctx.unique_name("cache", ext))
            status, handle = w.create_file(
                p, path, access=FileAccess.GENERIC_WRITE,
                disposition=CreateDisposition.CREATE)
            if status.is_error or handle is None:
                continue
            size = int(LogNormal(6_000, 1.4).sample(ctx.rng))
            ctx.write_stream(handle, size, int(WRITE_SIZES.sample(ctx.rng)))
            w.close_handle(p, handle)
            cat.web_cache.append(path[len(ctx.drive):])
            # Some entries are immediately re-fetched and overwritten —
            # within milliseconds of creation (§6.3's 4 ms overwrite mass).
            if ctx.rng.random() < 0.45:
                ctx.pause_millis(float(ctx.rng.uniform(0.1, 1.0)))
                status, handle = w.create_file(
                    p, path, access=FileAccess.GENERIC_WRITE,
                    disposition=CreateDisposition.OVERWRITE_IF)
                if status.is_success and handle is not None:
                    ctx.write_stream(handle, size,
                                     int(WRITE_SIZES.sample(ctx.rng)))
                    w.close_handle(p, handle)
        # Revisit: read cached entries (cache-hit candidates).
        for _ in range(int(ctx.rng.integers(2, 9))):
            if not cat.web_cache:
                break
            path = ctx.local(ctx.catalog.pick(ctx.rng, cat.web_cache))
            status, handle = w.create_file(p, path)
            if status.is_success and handle is not None:
                chunk = int(ctx.rng.choice([512, 1024, 2048]))
                ctx.read_whole(handle, chunk, max_ops=60)
                w.close_handle(p, handle)
        # Cache eviction: explicit deletes, mostly a second or two after
        # the entries were written, with a heavy-tailed laggard population
        # (§6.3: 72% of explicit deletes within 4 s, top 10% much later).
        if len(cat.web_cache) > 50 and ctx.rng.random() < 0.5:
            delay_ms = float(min(Pareto(1.3, 300.0).sample(ctx.rng), 4000.0))
            ctx.pause_millis(delay_ms)
            for _ in range(int(ctx.rng.integers(1, 5))):
                victim = cat.web_cache.pop(
                    int(ctx.rng.integers(len(cat.web_cache))))
                w.delete_file(p, ctx.local(victim))
        # Failed or abandoned downloads: scratch files that die an explicit
        # death a second or two after creation (§6.3's fast deletes).
        if ctx.rng.random() < 0.5:
            scratch = ctx.local(ctx.catalog.temp_dir + "\\" +
                                ctx.unique_name("dl", "tmp"))
            status, handle = w.create_file(
                p, scratch, access=FileAccess.GENERIC_WRITE,
                disposition=CreateDisposition.CREATE)
            if status.is_success and handle is not None:
                ctx.write_stream(handle, int(ctx.rng.uniform(512, 40_000)),
                                 2048)
                w.close_handle(p, handle)
                ctx.pause_millis(float(ctx.rng.uniform(300, 2500)))
                w.delete_file(p, scratch)
        # History file update: read-write random access.
        if ctx.rng.random() < 0.5:
            hist = ctx.local(cat.profile_dir + r"\history\history.dat")
            status, handle = w.create_file(
                p, hist, access=FileAccess.GENERIC_READ | FileAccess.GENERIC_WRITE,
                disposition=CreateDisposition.OPEN_IF)
            if status.is_success and handle is not None:
                for _ in range(int(ctx.rng.integers(2, 7))):
                    offset = int(ctx.rng.integers(0, 200_000))
                    w.read_file(p, handle, 512, offset=offset)
                    w.write_file(p, handle, 512, offset=offset)
                w.close_handle(p, handle)


class MailApp(AppModel):
    """Mail client: random read-write mailbox access, eager flushing.

    Non-interactive: mailbox I/O is issued by the client's background
    synchronisation and polling threads (§7's process-controlled traffic).
    """

    name = "outlook.exe"
    interactive = False

    def __init__(self, ctx: AppContext) -> None:
        super().__init__(ctx)
        # 87% of flush-using applications flush after every write (§9.2).
        self.flushes_every_write = ctx.rng.random() < 0.87

    def burst(self) -> None:
        ctx = self.ctx
        w, p = ctx.win32, ctx.process
        cat = ctx.catalog
        if not cat.mail_files:
            return
        box = ctx.local(ctx.catalog.pick(ctx.rng, cat.mail_files))
        # Probe for a lock file (§8.4's not-found population), then take
        # the lock: a zero-byte marker file, explicitly deleted seconds
        # later — most of §6.3's under-100-byte fast-delete mass.
        status, handle = w.create_file(p, box + ".lock")
        if status.is_success and handle is not None:
            w.close_handle(p, handle)
        lock_held = False
        status, handle = w.create_file(
            p, box + ".lock", access=FileAccess.GENERIC_WRITE,
            disposition=CreateDisposition.CREATE)
        if status.is_success and handle is not None:
            w.close_handle(p, handle)
            lock_held = True
        # A third of sessions just browse (read-only random access).
        browsing = ctx.rng.random() < 0.35
        access = (FileAccess.GENERIC_READ if browsing
                  else FileAccess.GENERIC_READ | FileAccess.GENERIC_WRITE)
        status, handle = w.create_file(
            p, box, access=access, disposition=CreateDisposition.OPEN_IF)
        if status.is_error or handle is None:
            return
        fo = w.file_object(p, handle)
        size = fo.node.size if fo.node is not None else 0
        # Read a batch of messages at random offsets (mostly cache-cold on
        # a large mailbox).
        for _ in range(int(ctx.rng.integers(10, 30))):
            offset = int(ctx.rng.integers(0, max(1, size)))
            w.read_file(p, handle, int(READ_SIZES.sample(ctx.rng)),
                        offset=offset)
            ctx.pause_micros(float(ctx.rng.uniform(30, 400)))
        if not browsing:
            # Append new messages; flush behaviour per §9.2.
            for _ in range(int(ctx.rng.integers(1, 5))):
                w.write_file(p, handle, int(WRITE_SIZES.sample(ctx.rng)),
                             offset=size)
                if self.flushes_every_write:
                    w.flush_file_buffers(p, handle)
        w.close_handle(p, handle)
        if lock_held:
            ctx.pause_millis(float(ctx.rng.uniform(200, 2000)))
            w.delete_file(p, box + ".lock")
        # New-mail polling: attribute-only opens.
        w.get_file_attributes(p, box)


class WinlogonApp(AppModel):
    """Profile download at logon; changed files migrate back at logoff."""

    name = "winlogon.exe"

    def __init__(self, ctx: AppContext) -> None:
        super().__init__(ctx)
        self.steps_remaining = 1

    def burst(self) -> None:
        ctx = self.ctx
        w, p = ctx.win32, ctx.process
        cat = ctx.catalog
        if not cat.profile_dir:
            return
        # Download: create/overwrite a batch of profile files locally
        # (sourced from the profile server — modelled as remote reads when
        # a share is mounted).
        n_files = int(min(200, Pareto(1.3, 15).sample(ctx.rng)))
        for i in range(n_files):
            if ctx.remote_catalog is not None and ctx.remote_catalog.documents \
                    and ctx.rng.random() < 0.5:
                remote = ctx.remote_prefix + ctx.remote_catalog.pick(
                    ctx.rng, ctx.remote_catalog.documents)
                if ctx.rng.random() < 0.4:
                    # CopyFile from the profile server to the local disk.
                    local = ctx.local(cat.profile_dir + "\\" +
                                      ctx.unique_name("sync", "dat"))
                    w.copy_file(p, remote, local, chunk=16384)
                else:
                    status, handle = w.create_file(p, remote)
                    if status.is_success and handle is not None:
                        ctx.read_whole(handle, 4096, max_ops=30)
                        w.close_handle(p, handle)
            path = ctx.local(
                cat.profile_dir + "\\" + ctx.unique_name("prof", "dat"))
            status, handle = w.create_file(
                p, path, access=FileAccess.GENERIC_WRITE,
                disposition=CreateDisposition.OVERWRITE_IF)
            if status.is_success and handle is not None:
                size = int(LogNormal(4_000, 1.3).sample(ctx.rng))
                ctx.write_stream(handle, size, 4096)
                # Installer behaviour: stamp the creation (and access)
                # time from the "installation medium" — files look years
                # old on a brand-new file system, and the last-write time
                # ends up more recent than the last access; the §5
                # unreliable-timestamp effect.
                if ctx.rng.random() < 0.5:
                    w.set_file_times(p, handle, creation=1000,
                                     last_access=1000)
                w.close_handle(p, handle)


class ServicesApp(AppModel):
    """System services: handles held for the whole session (§8.1), and the
    rare uncached/write-through opens (§9)."""

    name = "services.exe"

    def __init__(self, ctx: AppContext) -> None:
        super().__init__(ctx)
        self.steps_remaining = 10 ** 9
        self._held: list[int] = []

    def on_start(self) -> None:
        super().on_start()
        ctx = self.ctx
        w, p = ctx.win32, ctx.process
        # Open a few long-lived files (the loadwc pattern).  Held with a
        # read-only share mode, so other processes' write attempts hit
        # STATUS_SHARING_VIOLATION (§8.4's residual failures).
        from repro.common.flags import ShareMode
        pool = ctx.catalog.documents
        for _ in range(min(4, len(pool))):
            path = ctx.local(ctx.catalog.pick(ctx.rng, pool))
            status, handle = w.create_file(
                p, path,
                access=FileAccess.GENERIC_READ | FileAccess.GENERIC_WRITE,
                disposition=CreateDisposition.OPEN_IF,
                share=ShareMode.READ)
            if status.is_success and handle is not None:
                self._held.append(handle)

    def burst(self) -> None:
        ctx = self.ctx
        w, p = ctx.win32, ctx.process
        # Configuration polling: attribute-only opens on system files —
        # pure control traffic from a non-interactive process (§8.3).
        pool = ctx.catalog.dlls or ctx.catalog.documents
        for _ in range(int(ctx.rng.integers(3, 8))):
            if not pool:
                break
            w.get_file_attributes(p, ctx.local(ctx.catalog.pick(ctx.rng,
                                                                pool)))
        # Work the long-lived handles: read-write random.
        for handle in self._held:
            if ctx.rng.random() < 0.5:
                continue
            offset = int(ctx.rng.integers(0, 65536))
            w.read_file(p, handle, 4096, offset=offset)
            if ctx.rng.random() < 0.4:
                w.write_file(p, handle, 4096, offset=offset)
        # Service log append: a write-only partially-sequential session
        # (the paper's write-only "other sequential" row of table 3).
        log = ctx.local(r"\winnt\system32\services.log")
        status, handle = (NtStatus.OBJECT_NAME_NOT_FOUND, None) \
            if ctx.rng.random() >= 0.3 else w.create_file(
                p, log, access=FileAccess.GENERIC_WRITE,
                disposition=CreateDisposition.OPEN_IF)
        if status.is_success and handle is not None:
            fo = w.file_object(p, handle)
            end = fo.node.size if fo.node is not None else 0
            w.set_file_pointer(p, handle, end)
            for _ in range(int(ctx.rng.integers(2, 6))):
                w.write_file(p, handle, int(ctx.rng.choice([128, 256, 512])))
            w.close_handle(p, handle)
        # Status updates written in place: write-only random sessions
        # (table 3's write-only random row).
        if ctx.rng.random() < 0.35 and self._held:
            pool = ctx.catalog.documents
            if pool:
                path = ctx.local(ctx.catalog.pick(ctx.rng, pool))
                status, handle = w.create_file(
                    p, path, access=FileAccess.GENERIC_WRITE,
                    disposition=CreateDisposition.OPEN_IF)
                if status.is_success and handle is not None:
                    for _ in range(int(ctx.rng.integers(2, 5))):
                        offset = int(ctx.rng.integers(0, 32768)) & ~0x1FF
                        w.write_file(p, handle, 512, offset=offset)
                    w.close_handle(p, handle)
        # Kernel-service direct-memory reads (§10: "only kernel-based
        # services use this functionality").
        if ctx.rng.random() < 0.15 and ctx.catalog.dlls:
            path = ctx.local(ctx.catalog.pick(ctx.rng, ctx.catalog.dlls))
            status, handle = w.create_file(p, path)
            if status.is_success and handle is not None:
                w.read_file(p, handle, 4096)  # initialises caching
                for _ in range(int(ctx.rng.integers(2, 6))):
                    w.mdl_read(p, handle, 4096,
                               offset=int(ctx.rng.integers(0, 8)) * 4096)
                w.close_handle(p, handle)
        # The cache-disabled, write-through system files (§9: 76% of
        # uncached files belong to the system process; only ~1.4% of
        # writing opens disable caching).
        if ctx.rng.random() < 0.05:
            path = ctx.local(r"\winnt\system32\config" + "\\" +
                             ctx.unique_name("reg", "log"))
            status, handle = w.create_file(
                p, path, access=FileAccess.GENERIC_READ | FileAccess.GENERIC_WRITE,
                disposition=CreateDisposition.OPEN_IF,
                options=(CreateOptions.NO_INTERMEDIATE_BUFFERING
                         | CreateOptions.WRITE_THROUGH))
            if status.is_success and handle is not None:
                for _ in range(int(ctx.rng.integers(1, 5))):
                    w.write_file(p, handle, 4096)
                    w.read_file(p, handle, 4096, offset=0)
                w.close_handle(p, handle)


class JavaToolApp(AppModel):
    """Java tooling: class files read 2–4 bytes at a time (§10)."""

    name = "javac.exe"

    def burst(self) -> None:
        ctx = self.ctx
        w, p = ctx.win32, ctx.process
        cat = ctx.catalog
        if not cat.class_files:
            return
        for _ in range(int(ctx.rng.integers(1, 4))):
            path = ctx.local(ctx.catalog.pick(ctx.rng, cat.class_files))
            status, handle = w.create_file(p, path)
            if status.is_error or handle is None:
                continue
            # Hundreds of tiny reads for a single class file, stopping at
            # the known size.
            fo = w.file_object(p, handle)
            size = fo.node.size if fo.node is not None else 0
            n_reads = int(min(400, ctx.rng.uniform(50, 300)))
            chunk = int(ctx.rng.choice([2, 4]))
            total = 0
            for _ in range(n_reads):
                if total >= size:
                    break
                status, got = w.read_file(p, handle, chunk)
                if status.is_error or got == 0:
                    break
                total += got
            w.close_handle(p, handle)


class BigBufferMailerApp(AppModel):
    """A non-Microsoft mailer writing through a single 4 MB buffer (§10)."""

    name = "bigmailer.exe"

    def burst(self) -> None:
        ctx = self.ctx
        w, p = ctx.win32, ctx.process
        path = ctx.local(ctx.catalog.profile_dir + "\\" +
                         ctx.unique_name("spool", "mbx"))
        status, handle = w.create_file(
            p, path, access=FileAccess.GENERIC_WRITE,
            disposition=CreateDisposition.CREATE)
        if status.is_error or handle is None:
            return
        w.write_file(p, handle, 4 * 1024 * 1024)
        w.close_handle(p, handle)
        ctx.pause_millis(float(ctx.rng.uniform(100, 3000)))
        w.delete_file(p, path)


class ScientificApp(AppModel):
    """Simulation/statistics: huge files, small mapped-view reads (§6.1)."""

    name = "simulate.exe"

    def burst(self) -> None:
        ctx = self.ctx
        w, p = ctx.win32, ctx.process
        cat = ctx.catalog
        if not cat.datasets:
            return
        path = ctx.local(ctx.catalog.pick(ctx.rng, cat.datasets))
        status, handle = w.create_file(p, path)
        if status.is_error or handle is None:
            return
        fo = w.file_object(p, handle)
        size = fo.node.size if fo.node is not None else 0
        # Read small portions through a mapped view.
        for _ in range(int(ctx.rng.integers(2, 7))):
            offset = int(ctx.rng.integers(0, max(1, size)))
            length = int(ctx.rng.uniform(65536, 1_048_576))
            w.fault_view(p, handle, offset, min(length, max(0, size - offset)))
            ctx.pause_millis(float(ctx.rng.uniform(2, 30)))
        w.close_handle(p, handle)
        # Write a results file; small files sometimes get the
        # sequential-only hint even though it cannot help (§9.1).
        out = ctx.local(r"\data\results" + "\\" + ctx.unique_name("run", "dat"))
        options = CreateOptions.NONE
        if ctx.rng.random() < 0.3:
            options |= CreateOptions.SEQUENTIAL_ONLY
        status, handle = w.create_file(
            p, out, access=FileAccess.GENERIC_WRITE,
            disposition=CreateDisposition.OVERWRITE_IF, options=options)
        if status.is_success and handle is not None:
            size = int(LogNormal(20_000, 1.2).sample(ctx.rng))
            ctx.write_stream(handle, size, 4096)
            w.close_handle(p, handle)


class DbAdminApp(AppModel):
    """Administrative database work: random I/O, temporary sort files."""

    name = "dbadmin.exe"

    def burst(self) -> None:
        ctx = self.ctx
        w, p = ctx.win32, ctx.process
        cat = ctx.catalog
        if not cat.databases:
            return
        db = ctx.local(ctx.catalog.pick(ctx.rng, cat.databases))
        status, handle = w.create_file(
            p, db, access=FileAccess.GENERIC_READ | FileAccess.GENERIC_WRITE,
            disposition=CreateDisposition.OPEN_IF)
        if status.is_error or handle is None:
            return
        fo = w.file_object(p, handle)
        size = fo.node.size if fo.node is not None else 0
        for _ in range(int(ctx.rng.integers(4, 20))):
            offset = int(ctx.rng.integers(0, max(1, size))) & ~0xFFF
            w.read_file(p, handle, int(ctx.rng.choice([4096, 8192, 16384])),
                        offset=offset)
            if ctx.rng.random() < 0.4:
                # Updates hold a byte-range lock over the page.
                w.lock_file(p, handle, offset, 4096)
                w.write_file(p, handle, 4096, offset=offset)
                w.unlock_file(p, handle, offset, 4096)
            ctx.pause_micros(float(ctx.rng.uniform(50, 600)))
        w.close_handle(p, handle)
        # Temporary sort file: TEMPORARY attribute + delete-on-close —
        # the 1% of §6.3 deletions, and the unwritten-data saving.
        if ctx.rng.random() < 0.15:
            path = ctx.local(ctx.catalog.temp_dir + "\\" +
                             ctx.unique_name("sort", "tmp"))
            status, handle = w.create_file(
                p, path, access=FileAccess.GENERIC_READ | FileAccess.GENERIC_WRITE,
                disposition=CreateDisposition.CREATE,
                options=CreateOptions.DELETE_ON_CLOSE,
                attributes=FileAttributes.TEMPORARY)
            if status.is_success and handle is not None:
                ctx.write_stream(handle, int(ctx.rng.uniform(8192, 262144)),
                                 8192)
                w.read_file(p, handle, 8192, offset=0)
                w.close_handle(p, handle)
        # Transaction log append with explicit flushing.
        log = ctx.local(r"\users\db\txn.log" if not cat.datasets
                        else r"\data\db\txn.log")
        status, handle = w.create_file(
            p, log, access=FileAccess.GENERIC_WRITE,
            disposition=CreateDisposition.OPEN_IF)
        if status.is_success and handle is not None:
            fo = w.file_object(p, handle)
            end = fo.node.size if fo.node is not None else 0
            w.write_file(p, handle, 512, offset=end)
            w.flush_file_buffers(p, handle)
            w.close_handle(p, handle)


class FrontPageApp(AppModel):
    """HTML editor: "never keeps files open for longer than a few
    milliseconds" (§8.1) — every edit is an open, a fast transfer, and an
    immediate close."""

    name = "frontpage.exe"
    interactive = True

    def burst(self) -> None:
        ctx = self.ctx
        w, p = ctx.win32, ctx.process
        cat = ctx.catalog
        pool = cat.web_cache or cat.documents
        if not pool:
            return
        for _ in range(int(ctx.rng.integers(2, 8))):
            path = ctx.local(ctx.catalog.pick(ctx.rng, pool))
            status, handle = w.create_file(p, path)
            if status.is_success and handle is not None:
                ctx.read_whole(handle, 4096, max_ops=12)
                w.close_handle(p, handle)
            # Save the edit: a whole-file overwrite, open held only for
            # the duration of the transfer.
            if ctx.rng.random() < 0.5:
                status, handle = w.create_file(
                    p, path, access=FileAccess.GENERIC_WRITE,
                    disposition=CreateDisposition.OVERWRITE_IF)
                if status.is_success and handle is not None:
                    size = int(LogNormal(6_000, 1.0).sample(ctx.rng))
                    ctx.write_stream(handle, size, 2048)
                    w.close_handle(p, handle)
            ctx.pause_millis(float(ctx.rng.uniform(1, 10)))


class InstallerApp(AppModel):
    """Application-package installation (§5).

    Installs are the churn peaks outside the profile tree: hundreds of
    files created under \\Program Files in one burst, their creation
    times stamped from the installation medium (the §5 backdated-
    timestamp effect), plus a registration pass of attribute probes.
    """

    name = "setup.exe"
    interactive = True

    def __init__(self, ctx: AppContext) -> None:
        super().__init__(ctx)
        self.steps_remaining = 1  # one install per session

    def burst(self) -> None:
        ctx = self.ctx
        w, p = ctx.win32, ctx.process
        package = f"pkg{p.pid % 97:02d}"
        base = rf"\program files\{package}"
        w.create_directory(p, ctx.local(base))
        n_files = int(min(250, Pareto(1.2, 25).sample(ctx.rng)))
        extensions = ["dll", "exe", "hlp", "dat", "ini"]
        for i in range(n_files):
            ext = extensions[i % len(extensions)]
            path = ctx.local(rf"{base}\inst{i:03d}.{ext}")
            status, handle = w.create_file(
                p, path, access=FileAccess.GENERIC_WRITE,
                disposition=CreateDisposition.CREATE)
            if status.is_error or handle is None:
                continue
            size = int(LogNormal(20_000, 1.4).sample(ctx.rng))
            ctx.write_stream(handle, size, 16384)
            # Stamp times from the distribution medium.
            w.set_file_times(p, handle, creation=500, last_access=500)
            w.close_handle(p, handle)
            if ext in ("dll", "exe"):
                ctx.catalog.dlls.append(path[len(ctx.drive):])
        # Registration pass: verify what was installed.
        for i in range(0, n_files, 7):
            w.get_file_attributes(
                p, ctx.local(rf"{base}\inst{i:03d}.dll"))
        ctx.catalog.directories.append(base)


APP_REGISTRY: dict[str, type[AppModel]] = {
    cls.name: cls
    for cls in (NotepadApp, ExplorerApp, CompilerApp, WebBrowserApp, MailApp,
                WinlogonApp, ServicesApp, JavaToolApp, BigBufferMailerApp,
                ScientificApp, DbAdminApp, FrontPageApp, InstallerApp)
}
