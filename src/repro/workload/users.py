"""The five usage categories of §2, and machine construction.

Walk-up, pool, personal, administrative and scientific machines differ in
hardware (CPU class, memory, disk technology), content (developer machines
carry an SDK-like package; scientific ones carry datasets) and in their
application mix.  A fraction of walk-up machines run FAT, which drops
creation/last-access time maintenance (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nt.fs.disk import IDE_DISK, SCSI_ULTRA2_DISK, DiskModel
from repro.nt.fs.volume import Volume
from repro.nt.system import Machine, MachineConfig
from repro.workload.apps import (
    AppModel,
    BigBufferMailerApp,
    CompilerApp,
    DbAdminApp,
    FrontPageApp,
    InstallerApp,
    JavaToolApp,
    MailApp,
    NotepadApp,
    ScientificApp,
    WebBrowserApp)
from repro.workload.content import ContentCatalog, build_system_volume


@dataclass(frozen=True)
class UsageCategory:
    """One §2 usage category: hardware band plus application mix."""

    name: str
    cpu_mhz: tuple[int, int]
    memory_mb: tuple[int, int]
    disk: DiskModel
    disk_capacity_gb: tuple[float, float]
    fat_probability: float
    developer: bool
    scientific: bool
    # (app class, launch weight) for session applications.
    app_mix: tuple[tuple[type[AppModel], float], ...]
    # Heavy-tailed session launch interarrival scale (seconds).
    session_interarrival_xm: float = 8.0


CATEGORY_PROFILES: dict[str, UsageCategory] = {
    "walkup": UsageCategory(
        name="walkup", cpu_mhz=(200, 233), memory_mb=(64, 96),
        disk=IDE_DISK, disk_capacity_gb=(2.0, 4.0), fat_probability=0.3,
        developer=False, scientific=False,
        app_mix=((NotepadApp, 3.0), (WebBrowserApp, 3.0), (MailApp, 2.0),
                 (CompilerApp, 0.5), (InstallerApp, 0.2)),
        session_interarrival_xm=8.0),
    "pool": UsageCategory(
        name="pool", cpu_mhz=(300, 450), memory_mb=(96, 128),
        disk=IDE_DISK, disk_capacity_gb=(4.0, 6.0), fat_probability=0.0,
        developer=True, scientific=False,
        app_mix=((CompilerApp, 4.0), (JavaToolApp, 2.0), (WebBrowserApp, 2.0),
                 (NotepadApp, 1.0), (BigBufferMailerApp, 0.5)),
        session_interarrival_xm=6.0),
    "personal": UsageCategory(
        name="personal", cpu_mhz=(200, 266), memory_mb=(64, 128),
        disk=IDE_DISK, disk_capacity_gb=(2.0, 6.0), fat_probability=0.1,
        developer=False, scientific=False,
        app_mix=((MailApp, 3.0), (WebBrowserApp, 3.0), (NotepadApp, 2.0),
                 (FrontPageApp, 1.0), (BigBufferMailerApp, 0.5),
                 (CompilerApp, 0.5), (InstallerApp, 0.2)),
        session_interarrival_xm=10.0),
    "administrative": UsageCategory(
        name="administrative", cpu_mhz=(200, 233), memory_mb=(64, 96),
        disk=IDE_DISK, disk_capacity_gb=(2.0, 4.0), fat_probability=0.1,
        developer=False, scientific=False,
        app_mix=((DbAdminApp, 4.0), (MailApp, 2.0), (WebBrowserApp, 1.0)),
        session_interarrival_xm=10.0),
    "scientific": UsageCategory(
        name="scientific", cpu_mhz=(450, 450), memory_mb=(256, 512),
        disk=SCSI_ULTRA2_DISK, disk_capacity_gb=(9.0, 18.0),
        fat_probability=0.0, developer=False, scientific=True,
        app_mix=((ScientificApp, 4.0), (DbAdminApp, 1.0),
                 (WebBrowserApp, 0.5)),
        session_interarrival_xm=12.0),
}


@dataclass
class BuiltMachine:
    """A machine ready to run its workload."""

    machine: Machine
    catalog: ContentCatalog
    category: UsageCategory
    username: str
    remote_prefix: str = ""
    remote_catalog: ContentCatalog | None = field(default=None)


def build_machine(name: str, category_name: str, seed: int,
                  content_scale: float = 0.2,
                  username: str | None = None,
                  spans_enabled: bool = False,
                  verifier_enabled: bool = False,
                  metrics_interval_seconds: float = 0.0,
                  profile_enabled: bool = False,
                  batched_dispatch: bool = True) -> BuiltMachine:
    """Construct one traced machine of the given category with content."""
    category = CATEGORY_PROFILES[category_name]
    seeder = np.random.default_rng(seed)
    config = MachineConfig(
        name=name,
        category=category_name,
        cpu_mhz=int(seeder.integers(category.cpu_mhz[0],
                                    category.cpu_mhz[1] + 1)),
        memory_mb=int(seeder.integers(category.memory_mb[0],
                                      category.memory_mb[1] + 1)),
        disk=category.disk,
        disk_capacity_gb=float(seeder.uniform(*category.disk_capacity_gb)),
        fs_type=(Volume.FAT if seeder.random() < category.fat_probability
                 else Volume.NTFS),
        seed=seed,
        spans_enabled=spans_enabled,
        verifier_enabled=verifier_enabled,
        metrics_interval_seconds=metrics_interval_seconds,
        profile_enabled=profile_enabled,
        batched_dispatch=batched_dispatch,
    )
    machine = Machine(config)
    volume = Volume(
        label=f"{name}-C", fs_type=config.fs_type,
        capacity_bytes=int(config.disk_capacity_gb * 1024**3),
        disk=config.disk)
    user = username or f"user{seed % 1000:03d}"
    catalog = build_system_volume(
        volume, machine.rng, username=user, scale=content_scale,
        developer=category.developer, scientific=category.scientific)
    machine.mount("C", volume)
    return BuiltMachine(machine=machine, catalog=catalog, category=category,
                        username=user)
