"""Trace-fitted synthetic benchmarking (§7 point 3).

One of the paper's stated goals was a data collection usable "as
configuration information for realistic file system benchmarks", and §7
insists such benchmarks must carry the traced distributions — including
their infinite-variance tails — rather than Poisson/Normal stand-ins.

``fit_workload`` measures a :class:`~repro.analysis.warehouse.
TraceWarehouse` into a :class:`FittedWorkloadModel` (empirical
distributions for interarrivals, session shapes and request sizes), and
:class:`SyntheticApp` replays that model against any machine — closing
the loop from trace to benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING


from repro.common.flags import CreateDisposition, FileAccess
from repro.stats.distributions import Empirical
from repro.workload.apps import AppContext, AppModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.warehouse import TraceWarehouse


@dataclass
class FittedWorkloadModel:
    """Empirical distributions measured from a trace warehouse."""

    open_interarrival_ticks: Empirical
    reads_per_session: Empirical
    writes_per_session: Empirical
    read_sizes: Empirical
    write_sizes: Empirical
    target_file_sizes: Empirical
    # Session-type mix over successful opens.
    p_control: float
    p_read_only: float
    p_write_only: float
    p_read_write: float
    # Within data sessions: probability the access pattern is random.
    p_random_access: float
    n_source_instances: int

    def describe(self) -> str:
        return (f"fitted from {self.n_source_instances} sessions: "
                f"control {100 * self.p_control:.0f}%, "
                f"RO {100 * self.p_read_only:.0f}%, "
                f"WO {100 * self.p_write_only:.0f}%, "
                f"RW {100 * self.p_read_write:.0f}%, "
                f"random {100 * self.p_random_access:.0f}%")


def fit_workload(wh: "TraceWarehouse") -> FittedWorkloadModel:
    """Measure the distributions a synthetic benchmark needs."""
    from repro.analysis.opens import analyze_opens

    instances = [s for s in wh.instances if not s.open_failed]
    if not instances:
        raise ValueError("warehouse has no successful sessions to fit")
    opens = analyze_opens(wh)
    if opens.interarrival_all.size == 0:
        raise ValueError("warehouse has too few opens to fit")

    data = [s for s in instances if s.has_data]
    n_total = len(instances)
    n_control = n_total - len(data)
    usage_counts = {"read-only": 0, "write-only": 0, "read-write": 0}
    random_count = 0
    reads_per, writes_per, read_sz, write_sz, sizes = [], [], [], [], []
    for s in data:
        usage_counts[s.usage] = usage_counts.get(s.usage, 0) + 1
        if s.access_pattern() == "random":
            random_count += 1
        if s.n_reads:
            reads_per.append(s.n_reads)
        if s.n_writes:
            writes_per.append(s.n_writes)
        sizes.append(max(1, s.file_size_max))
        for op in s.ops:
            if op.returned <= 0:
                continue
            (read_sz if op.is_read else write_sz).append(op.returned)

    def empirical(values, fallback):
        return Empirical(values if values else [fallback])

    n_data = max(1, len(data))
    return FittedWorkloadModel(
        open_interarrival_ticks=Empirical(opens.interarrival_all),
        reads_per_session=empirical(reads_per, 1),
        writes_per_session=empirical(writes_per, 1),
        read_sizes=empirical(read_sz, 4096),
        write_sizes=empirical(write_sz, 4096),
        target_file_sizes=empirical(sizes, 4096),
        p_control=n_control / n_total,
        p_read_only=usage_counts["read-only"] / n_data,
        p_write_only=usage_counts["write-only"] / n_data,
        p_read_write=usage_counts["read-write"] / n_data,
        p_random_access=random_count / n_data,
        n_source_instances=n_total,
    )


class SyntheticApp(AppModel):
    """Replays a fitted workload model: the generated benchmark."""

    name = "synthetic.exe"

    def __init__(self, ctx: AppContext, model: FittedWorkloadModel,
                 n_sessions: int = 200) -> None:
        super().__init__(ctx)
        self.model = model
        self.steps_remaining = n_sessions
        self._target_counter = 0

    def on_start(self) -> None:
        # The benchmark process itself does not model image loading.
        return

    def step(self) -> Optional[int]:
        if self.steps_remaining <= 0:
            return None
        self.steps_remaining -= 1
        self.burst()
        if self.steps_remaining <= 0:
            return None
        gap = self.model.open_interarrival_ticks.sample(self.ctx.rng)
        return self.ctx.now + max(1, int(gap))

    # ------------------------------------------------------------------ #

    def _pick_target(self, size_hint: int) -> str:
        ctx = self.ctx
        cat = ctx.catalog
        pools = [cat.documents, cat.web_cache, cat.dlls, cat.mail_files]
        pools = [p for p in pools if p]
        if pools and ctx.rng.random() < 0.8:
            pool = pools[int(ctx.rng.integers(len(pools)))]
            return ctx.local(cat.pick(ctx.rng, pool))
        self._target_counter += 1
        return ctx.local(cat.temp_dir +
                         f"\\synth{self._target_counter:05d}.dat")

    def burst(self) -> None:
        ctx = self.ctx
        w, p = ctx.win32, ctx.process
        rng = ctx.rng
        model = self.model
        if rng.random() < model.p_control:
            # A control session: attribute query only.
            target = self._pick_target(0)
            w.get_file_attributes(p, target)
            return
        r = rng.random()
        if r < model.p_read_only:
            usage = "read-only"
        elif r < model.p_read_only + model.p_write_only:
            usage = "write-only"
        else:
            usage = "read-write"
        wants_read = usage in ("read-only", "read-write")
        wants_write = usage in ("write-only", "read-write")
        target = self._pick_target(
            int(model.target_file_sizes.sample(rng)))
        access = FileAccess.NONE
        if wants_read:
            access |= FileAccess.GENERIC_READ
        if wants_write:
            access |= FileAccess.GENERIC_WRITE
        disposition = (CreateDisposition.OPEN_IF if wants_write
                       else CreateDisposition.OPEN)
        status, handle = w.create_file(p, target, access=access,
                                       disposition=disposition)
        if status.is_error or handle is None:
            return
        fo = w.file_object(p, handle)
        size = max(1, fo.node.size if fo.node is not None else 1)
        random_access = rng.random() < model.p_random_access
        if wants_read:
            n_reads = max(1, int(model.reads_per_session.sample(rng)))
            offset = 0
            for _ in range(min(n_reads, 2000)):
                length = max(1, int(model.read_sizes.sample(rng)))
                if random_access:
                    offset = int(rng.integers(0, size))
                w.read_file(p, handle, length, offset=offset)
                offset += length
                if offset >= size and not random_access:
                    break
                ctx.pause_micros(float(rng.uniform(10, 80)))
        if wants_write:
            n_writes = max(1, int(model.writes_per_session.sample(rng)))
            offset = size if not random_access else 0
            for _ in range(min(n_writes, 2000)):
                length = max(1, int(model.write_sizes.sample(rng)))
                if random_access:
                    offset = int(rng.integers(0, size))
                w.write_file(p, handle, length, offset=offset)
                offset += length
                ctx.pause_micros(float(rng.uniform(2, 20)))
        w.close_handle(p, handle)


def run_synthetic_benchmark(machine, catalog,
                            model: FittedWorkloadModel,
                            n_sessions: int = 300) -> None:
    """Drive a fitted workload to completion on a machine."""
    process = machine.create_process(SyntheticApp.name)
    ctx = AppContext(machine=machine, process=process, catalog=catalog,
                     rng=machine.rng)
    app = SyntheticApp(ctx, model, n_sessions=n_sessions)
    app.on_start()
    while True:
        next_wake = app.step()
        if next_wake is None:
            break
        machine.run_until(next_wake)
    app.on_exit()
