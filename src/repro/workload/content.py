r"""Initial file-system content (§5's shapes).

Local volumes: a \winnt tree whose executables, DLLs and fonts dominate the
size distribution; per-user profile trees (\winnt\profiles\<user>) holding
mail files and a WWW cache of thousands of small files; application
packages under \Program Files (developer machines get an SDK-like package
that shifts type counts); and a small set of local user documents.

Sizes are drawn per file type from lognormal bodies with Pareto tails, so
the §5/§7 findings (heavy-tailed sizes, type-dominated tails) are emergent.
The generated tree is also returned as a :class:`ContentCatalog` so the
application models can pick realistic targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.flags import FileAttributes
from repro.nt.fs.nodes import DirectoryNode, FileNode
from repro.nt.fs.path import split_path
from repro.nt.fs.volume import Volume
from repro.stats.distributions import LogNormal, Pareto, Sampler


class TypeSize(Sampler):
    """Per-file-type size model: lognormal body with a Pareto tail."""

    def __init__(self, median: float, sigma: float,
                 tail_probability: float = 0.0, tail_alpha: float = 1.3,
                 tail_xm: float = 1e6) -> None:
        self.body = LogNormal(median, sigma)
        self.tail_probability = tail_probability
        self.tail = Pareto(tail_alpha, tail_xm) if tail_probability > 0 else None

    def sample(self, rng: np.random.Generator) -> float:
        if self.tail is not None and rng.random() < self.tail_probability:
            return min(self.tail.sample(rng), 400e6)
        return self.body.sample(rng)


# Size models per file type (bytes).  Executables, DLLs and fonts carry the
# big tails; web-cache and source files are small.
FILE_TYPE_SIZES: dict[str, TypeSize] = {
    "exe": TypeSize(45_000, 1.5, tail_probability=0.10, tail_alpha=1.2,
                    tail_xm=2e6),
    "dll": TypeSize(55_000, 1.6, tail_probability=0.12, tail_alpha=1.25,
                    tail_xm=1.5e6),
    "sys": TypeSize(22_000, 1.0),
    "drv": TypeSize(18_000, 1.0),
    "ttf": TypeSize(70_000, 1.1, tail_probability=0.08, tail_alpha=1.4,
                    tail_xm=1e6),
    "fon": TypeSize(40_000, 0.8),
    "hlp": TypeSize(60_000, 1.3),
    "ini": TypeSize(1_500, 1.0),
    "txt": TypeSize(3_000, 1.3),
    "doc": TypeSize(10_000, 1.0, tail_probability=0.04, tail_alpha=1.5,
                    tail_xm=1e6),
    "xls": TypeSize(22_000, 1.2),
    "ppt": TypeSize(180_000, 1.1, tail_probability=0.05, tail_alpha=1.4,
                    tail_xm=2e6),
    "htm": TypeSize(5_500, 1.2),
    "gif": TypeSize(3_500, 1.3),
    "jpg": TypeSize(14_000, 1.2),
    "css": TypeSize(2_000, 0.8),
    "js": TypeSize(3_500, 1.0),
    "c": TypeSize(5_000, 1.1),
    "h": TypeSize(3_000, 1.1),
    "cpp": TypeSize(6_500, 1.1),
    "obj": TypeSize(14_000, 1.2),
    "lib": TypeSize(220_000, 1.2, tail_probability=0.05, tail_alpha=1.4,
                    tail_xm=2e6),
    "pch": TypeSize(4_500_000, 0.5),
    "ilk": TypeSize(2_500_000, 0.6),
    "pdb": TypeSize(900_000, 0.9),
    "mbx": TypeSize(6_000_000, 1.0, tail_probability=0.10, tail_alpha=1.3,
                    tail_xm=16e6),
    "pst": TypeSize(12_000_000, 0.8, tail_probability=0.10, tail_alpha=1.3,
                    tail_xm=32e6),
    "class": TypeSize(3_200, 0.8),
    "jar": TypeSize(350_000, 1.0),
    "mdb": TypeSize(1_800_000, 0.9, tail_probability=0.08, tail_alpha=1.3,
                    tail_xm=8e6),
    "log": TypeSize(40_000, 1.5),
    "dat": TypeSize(30_000, 1.8, tail_probability=0.05, tail_alpha=1.3,
                    tail_xm=2e6),
    "tmp": TypeSize(8_000, 1.5),
    "lnk": TypeSize(400, 0.3),
    "cpl": TypeSize(35_000, 0.8),
    "zip": TypeSize(900_000, 1.2, tail_probability=0.10, tail_alpha=1.3,
                    tail_xm=5e6),
    "bin": TypeSize(120_000_000, 0.6),   # scientific datasets
}


@dataclass
class ContentCatalog:
    """Paths the application models pick their targets from."""

    executables: list[str] = field(default_factory=list)
    dlls: list[str] = field(default_factory=list)
    documents: list[str] = field(default_factory=list)
    sources: list[str] = field(default_factory=list)
    headers: list[str] = field(default_factory=list)
    objects: list[str] = field(default_factory=list)
    dev_outputs: list[str] = field(default_factory=list)
    web_cache: list[str] = field(default_factory=list)
    mail_files: list[str] = field(default_factory=list)
    class_files: list[str] = field(default_factory=list)
    databases: list[str] = field(default_factory=list)
    datasets: list[str] = field(default_factory=list)
    directories: list[str] = field(default_factory=list)
    profile_dir: str = ""
    web_cache_dir: str = ""
    temp_dir: str = ""
    user_docs_dir: str = ""

    def pick(self, rng: np.random.Generator, paths: list[str],
             zipf_s: float = 0.9) -> str:
        """Popularity-weighted (Zipf) choice from a path list."""
        if not paths:
            raise ValueError("empty path list")
        weights = 1.0 / np.arange(1, len(paths) + 1, dtype=float) ** zipf_s
        weights /= weights.sum()
        return paths[int(rng.choice(len(paths), p=weights))]


class _TreeBuilder:
    """Creates directories and sized files directly on a volume."""

    def __init__(self, volume: Volume, rng: np.random.Generator) -> None:
        self.volume = volume
        self.rng = rng
        self.n_files = 0

    def ensure_dir(self, path: str) -> DirectoryNode:
        node = self.volume.root
        walked = ""
        for component in split_path(path):
            walked += "\\" + component
            child = node.lookup(component)
            if child is None:
                child = self.volume.create_directory(
                    node, component, FileAttributes.DIRECTORY, now=0)
            if not isinstance(child, DirectoryNode):
                raise ValueError(f"{walked} exists and is a file")
            node = child
        return node

    # Extensions stored NTFS-compressed (archives and large datasets).
    COMPRESSED_EXTENSIONS = frozenset({"zip", "bin"})

    def add_file(self, directory: DirectoryNode, name: str,
                 size: int | None = None) -> FileNode:
        ext = name.rsplit(".", 1)[-1].lower() if "." in name else "dat"
        if size is None:
            model = FILE_TYPE_SIZES.get(ext, FILE_TYPE_SIZES["dat"])
            size = max(0, int(model.sample(self.rng)))
        attributes = FileAttributes.NORMAL
        if ext in self.COMPRESSED_EXTENSIONS and self.rng.random() < 0.5:
            attributes |= FileAttributes.COMPRESSED
        node = self.volume.create_file(directory, name, attributes, now=0)
        self.volume.set_file_size(node, size, now=0)
        node.valid_data_length = size
        self.n_files += 1
        return node

    def populate(self, dir_path: str, count: int, extensions: list[str],
                 prefix: str = "f") -> list[str]:
        """Create ``count`` files cycling over ``extensions``; return paths."""
        directory = self.ensure_dir(dir_path)
        paths = []
        for i in range(count):
            ext = extensions[i % len(extensions)]
            name = f"{prefix}{i:04d}.{ext}"
            if directory.lookup(name) is not None:
                continue
            self.add_file(directory, name)
            paths.append(f"{dir_path}\\{name}")
        return paths


def build_system_volume(volume: Volume, rng: np.random.Generator,
                        username: str = "user",
                        scale: float = 0.25,
                        developer: bool = False,
                        scientific: bool = False) -> ContentCatalog:
    r"""Populate a local system volume and return its catalog.

    ``scale=1.0`` approximates the paper's 24k–45k files per volume;
    smaller scales keep study runs light while preserving the shapes.
    Developer machines get an SDK-like package (the §5 type-count shift);
    scientific machines get large datasets.
    """
    if not (0 < scale <= 1.0):
        raise ValueError("scale must be in (0, 1]")
    b = _TreeBuilder(volume, rng)
    cat = ContentCatalog()

    def n(base: int) -> int:
        jittered = base * scale * rng.uniform(0.8, 1.25)
        return max(2, int(jittered))

    # \winnt core.
    cat.executables += b.populate(r"\winnt", n(40), ["exe"], prefix="nt")
    cat.executables += b.populate(r"\winnt\system32", n(360), ["exe"],
                                  prefix="sys")
    cat.dlls += b.populate(r"\winnt\system32", n(1400), ["dll"], prefix="lib")
    b.populate(r"\winnt\system32\drivers", n(180), ["sys", "drv"])
    b.populate(r"\winnt\system32\config", 6, ["log", "dat"], prefix="hive")
    b.populate(r"\winnt\fonts", n(220), ["ttf", "fon"])
    b.populate(r"\winnt\help", n(130), ["hlp", "txt"])
    b.populate(r"\winnt\inf", n(150), ["ini", "inf" if False else "ini"])
    cat.directories += [r"\winnt", r"\winnt\system32", r"\winnt\fonts"]

    # The user profile (87%–99% of local user files live here, §5).
    profile = rf"\winnt\profiles\{username}"
    cat.profile_dir = profile
    b.populate(rf"{profile}\desktop", n(20), ["lnk", "txt", "doc"])
    b.populate(rf"{profile}\start menu", n(30), ["lnk"])
    cat.mail_files += b.populate(
        rf"{profile}\application data\mail", max(1, int(3 * scale + 1)),
        ["mbx", "pst"], prefix="box")
    web_dir = rf"{profile}\temporary internet files"
    cat.web_cache_dir = web_dir
    cat.web_cache += b.populate(
        web_dir, n(2600), ["htm", "gif", "jpg", "css", "js"], prefix="cache")
    b.populate(rf"{profile}\history", n(40), ["dat"])
    b.populate(rf"{profile}\cookies", n(120), ["txt"])
    cat.directories += [profile, web_dir]

    # Application packages.
    cat.executables += b.populate(r"\program files\office", n(25), ["exe"],
                                  prefix="app")
    cat.dlls += b.populate(r"\program files\office", n(160), ["dll"],
                           prefix="mso")
    cat.documents += b.populate(r"\program files\office\templates", n(60),
                                ["doc", "xls", "ppt"])
    b.populate(r"\program files\photoshop", n(90), ["dll", "exe", "dat"])
    cat.directories += [r"\program files", r"\program files\office"]

    if developer:
        # A Platform-SDK-like package: 14,000 files in 1,300 directories at
        # full scale (§5) — the package that shifts type counts.
        sdk_files = n(1200)
        per_dir = 11
        for d in range(max(1, sdk_files // per_dir)):
            sub = rf"\program files\platform sdk\include\sub{d:03d}"
            cat.headers += b.populate(sub, per_dir, ["h"], prefix="sdk")
        cat.sources += b.populate(r"\work\project", n(160), ["c", "cpp"],
                                  prefix="mod")
        cat.headers += b.populate(r"\work\project\include", n(120), ["h"],
                                  prefix="proj")
        cat.objects += b.populate(r"\work\project\obj", n(160), ["obj"],
                                  prefix="mod")
        cat.dev_outputs += b.populate(r"\work\project\out", 4,
                                      ["pch", "ilk", "pdb", "lib"],
                                      prefix="build")
        cat.class_files += b.populate(r"\work\javaproj\classes", n(220),
                                      ["class"], prefix="cls")
        cat.class_files += b.populate(r"\work\javaproj\lib", 3, ["jar"])
        cat.directories += [r"\work\project", r"\work\project\include",
                            r"\work\javaproj\classes"]

    if scientific:
        cat.datasets += b.populate(r"\data", max(2, int(4 * scale + 1)),
                                   ["bin"], prefix="dataset")
        b.populate(r"\data\results", n(50), ["dat", "log"])
        cat.directories += [r"\data", r"\data\results"]

    # Local user documents (a minority of user files are local, §5).
    cat.user_docs_dir = r"\users\docs"
    cat.documents += b.populate(cat.user_docs_dir, n(80),
                                ["doc", "xls", "txt"], prefix="doc")
    # Scratch space lives inside the profile (NT's Local Settings\Temp),
    # which is what concentrates churn under \winnt\profiles (§5).
    cat.temp_dir = rf"{profile}\local settings\temp"
    b.ensure_dir(cat.temp_dir)
    cat.directories += [cat.user_docs_dir, cat.temp_dir]

    cat.databases += b.populate(r"\data\db" if scientific else r"\users\db",
                                max(1, int(2 * scale + 1)), ["mdb"],
                                prefix="store")

    # Size the volume so fullness lands in the paper's 54%–87% band
    # (disks were bought to match their content's era).
    fullness = rng.uniform(0.54, 0.87)
    volume.capacity_bytes = max(int(volume.bytes_used / fullness),
                                volume.bytes_used + (16 << 20))
    return cat


def build_user_share(volume: Volume, rng: np.random.Generator,
                     username: str = "user", scale: float = 0.25
                     ) -> ContentCatalog:
    """Populate a network home-directory share (no uniformity, §5)."""
    b = _TreeBuilder(volume, rng)
    cat = ContentCatalog()
    # Share sizes ranged 500 KB – 700 MB and 150 – 27,000 files (§5):
    # draw the file count from a very wide lognormal.
    count = int(min(27_000 * scale,
                    max(20, LogNormal(400, 1.4).sample(rng) * scale * 4)))
    cat.documents += b.populate(rf"\{username}\docs", count // 2,
                                ["doc", "xls", "txt", "htm"], prefix="doc")
    cat.sources += b.populate(rf"\{username}\src", count // 4,
                              ["c", "h", "cpp"], prefix="src")
    b.populate(rf"\{username}\archive", max(1, count // 8), ["zip", "dat"])
    cat.user_docs_dir = rf"\{username}\docs"
    cat.directories += [rf"\{username}", rf"\{username}\docs",
                        rf"\{username}\src"]
    fullness = rng.uniform(0.3, 0.8)
    volume.capacity_bytes = max(int(volume.bytes_used / fullness),
                                volume.bytes_used + (16 << 20))
    return cat
