"""Parallel multi-machine study execution.

The paper traced 45 machines *concurrently* for four weeks; the serial
``run_study`` loop simulates that fleet one machine at a time on one
core.  This module fans the per-machine simulation out across a
``ProcessPoolExecutor`` (spawn context, so it behaves identically under
fork-unsafe embeddings) while guaranteeing the merged result is
byte-identical to the serial path:

* **Seeding** — a machine's seed derives from ``config.seed`` and its
  index alone (inside :func:`~repro.workload.study.simulate_machine`), so
  workers need no shared random state and each is independently
  deterministic.
* **Transport** — trace records are slotted frozen dataclasses that do
  not survive ``pickle``; collectors cross the process boundary in the
  trace store's packed binary format
  (:func:`repro.nt.tracing.store.pack_collector`), the same bytes the
  ``.nttrace`` archive uses, whose round-trip the test suite guards.
* **Merge** — artifacts are merged in machine *index* order
  (:func:`~repro.workload.study.merge_artifacts`), never completion
  order, so ``StudyResult`` and ``perf.json`` match the serial run byte
  for byte.  Wall-clock never enters results; worker topology only
  decides *where* a machine simulates.

Telemetry: workers forward their progress events over a manager queue; a
drain thread in the parent re-emits them through the caller's
:class:`~repro.workload.study.StudyTelemetry`, whose lock keeps lines
whole.  Worker events may interleave *between* lines (completion order is
nondeterministic) but never mid-line, and ``study-done`` is always last.

A worker failure of any kind — an exception inside the simulation, a
payload that cannot be pickled, or the worker process dying outright
(``BrokenProcessPool``) — surfaces as a :class:`StudyError` naming the
machine, never a bare pool traceback.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context
from queue import Empty
from threading import Event, Thread
from typing import Optional

from repro.common.clock import ticks_from_seconds
from repro.nt.tracing.store import pack_collector, unpack_collector
from repro.workload.study import (
    MachineArtifact,
    StudyConfig,
    StudyError,
    StudyResult,
    StudyTelemetry,
    _assign_categories,
    machine_name_for,
    merge_artifacts,
    simulate_machine,
)

_MP_CONTEXT = "spawn"


@dataclass(frozen=True)
class MachineTask:
    """Pickling-friendly description of one machine's simulation.

    ``fault`` is test-only fault injection for the error-path tests:
    ``"raise"`` raises inside the worker, ``"crash"`` kills the worker
    process outright, ``"unpicklable-result"`` poisons the result payload
    so it cannot be sent back.
    """

    index: int
    n_total: int
    category_name: str
    config: StudyConfig
    fault: Optional[str] = None

    @property
    def machine_name(self) -> str:
        return machine_name_for(self.index, self.category_name)


def machine_tasks(config: StudyConfig) -> list[MachineTask]:
    """The study's fan-out plan: one task per machine, in index order."""
    categories = _assign_categories(config)
    return [MachineTask(index=index, n_total=len(categories),
                        category_name=category_name, config=config)
            for index, category_name in enumerate(categories)]


def resolve_workers(workers: Optional[int], n_machines: int) -> int:
    """Worker-process count for a fleet (0 or None = one per CPU core)."""
    if not workers:
        workers = os.cpu_count() or 1
    return max(1, min(workers, max(1, n_machines)))


class _QueueTelemetry(StudyTelemetry):
    """Worker-side telemetry that forwards every event to the parent."""

    def __init__(self, queue) -> None:
        super().__init__(verbose=False)
        self._queue = queue

    def emit(self, event: str, **fields) -> None:
        super().emit(event, **fields)
        self._queue.put({"event": event, **fields})


def _simulate_task(task: MachineTask, events_queue=None) -> dict:
    """Worker entry point: simulate one machine, return a picklable payload."""
    if task.fault == "crash":
        os._exit(13)
    if task.fault == "raise":
        raise RuntimeError(
            f"injected fault in worker for {task.machine_name}")
    telemetry = (_QueueTelemetry(events_queue)
                 if events_queue is not None else None)
    artifact = simulate_machine(task.config, task.index, task.category_name,
                                task.n_total, telemetry=telemetry)
    payload = {
        "index": artifact.index,
        "name": artifact.name,
        "category": artifact.category,
        "collector": pack_collector(artifact.collector),
        "counters": artifact.counters,
        "perf": artifact.perf,
        "metrics": artifact.metrics,
        "profile": artifact.profile,
    }
    if task.fault == "unpicklable-result":
        payload["poison"] = lambda: None
    return payload


def _drain_events(queue, telemetry: StudyTelemetry, stop: Event) -> None:
    """Forward worker events to the parent telemetry until stopped."""
    while True:
        try:
            record = queue.get(timeout=0.05)
        except Empty:
            if stop.is_set():
                return
            continue
        telemetry.emit_record(record)


def run_pool(worker, tasks, n_workers: int,
             telemetry: Optional[StudyTelemetry] = None,
             describe=str) -> list:
    """Execute per-machine tasks on a spawn-context process pool.

    The generic engine under both study simulation and trace replay
    (:mod:`repro.replay.runner`): ``worker(task, events_queue)`` runs in a
    worker process and returns a picklable payload; payloads come back in
    *task* order, never completion order.  Any worker failure — an
    exception, an unpicklable payload, or the process dying outright — is
    raised as a :class:`StudyError` naming ``describe(task)`` (with a
    broken pool the earliest still-pending task is named, since the pool
    cannot attribute the death more precisely).
    """
    ctx = get_context(_MP_CONTEXT)
    manager = events_queue = drainer = None
    stop = Event()
    if telemetry is not None:
        manager = ctx.Manager()
        events_queue = manager.Queue()
        drainer = Thread(target=_drain_events,
                         args=(events_queue, telemetry, stop), daemon=True)
        drainer.start()
    payloads: list = []
    try:
        with ProcessPoolExecutor(max_workers=n_workers,
                                 mp_context=ctx) as pool:
            futures = [(task, pool.submit(worker, task, events_queue))
                       for task in tasks]
            for task, future in futures:
                try:
                    payloads.append(future.result())
                except Exception as exc:
                    kind = ("worker process died"
                            if isinstance(exc, BrokenProcessPool)
                            else type(exc).__name__)
                    raise StudyError(
                        f"parallel worker for machine {describe(task)} "
                        f"failed ({kind}): {exc}") from exc
    finally:
        if telemetry is not None:
            stop.set()
            drainer.join(timeout=10.0)
            manager.shutdown()
    return payloads


def run_tasks(tasks: list[MachineTask], n_workers: int,
              telemetry: Optional[StudyTelemetry] = None
              ) -> list[MachineArtifact]:
    """Execute machine tasks on a process pool; artifacts in index order."""
    payloads = run_pool(_simulate_task, tasks, n_workers, telemetry,
                        describe=lambda task: task.machine_name)
    return [MachineArtifact(
        index=payload["index"],
        name=payload["name"],
        category=payload["category"],
        collector=unpack_collector(payload["collector"]),
        counters=payload["counters"],
        perf=payload["perf"],
        metrics=payload["metrics"],
        profile=payload["profile"]) for payload in payloads]


def run_study_parallel(config: StudyConfig,
                       telemetry: Optional[StudyTelemetry] = None
                       ) -> StudyResult:
    """Run a study with its machines fanned out over worker processes.

    Byte-identical to the serial ``run_study`` for the same config seed;
    see the module docstring for the three guarantees that make it so.
    """
    tasks = machine_tasks(config)
    n_workers = resolve_workers(config.workers, len(tasks))
    artifacts = run_tasks(tasks, n_workers, telemetry)
    return merge_artifacts(artifacts,
                           ticks_from_seconds(config.duration_seconds),
                           telemetry)
