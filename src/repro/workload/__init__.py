"""Synthetic workload: file-system content, application models, users.

This package replaces the unavailable production environment of the paper's
45 traced machines.  Initial disk content follows §5's shapes (exe/dll/font
dominated size tails, a profile tree with a churning WWW cache); the
application models follow the per-application behaviours the paper calls
out (§6, §8–10); and session structure is heavy-tailed ON/OFF, the
mechanism §7 credits for the traffic's self-similar burstiness.
"""

from repro.workload.content import (
    ContentCatalog,
    build_system_volume,
    build_user_share,
    FILE_TYPE_SIZES,
)
from repro.workload.apps import (
    AppContext,
    AppModel,
    NotepadApp,
    ExplorerApp,
    CompilerApp,
    WebBrowserApp,
    MailApp,
    WinlogonApp,
    ServicesApp,
    JavaToolApp,
    BigBufferMailerApp,
    ScientificApp,
    DbAdminApp,
    FrontPageApp,
    InstallerApp,
    APP_REGISTRY,
)
from repro.workload.users import UsageCategory, CATEGORY_PROFILES, build_machine
from repro.workload.study import (StudyConfig, StudyError, StudyResult,
                                  StudyTelemetry, run_study)

__all__ = [
    "ContentCatalog",
    "build_system_volume",
    "build_user_share",
    "FILE_TYPE_SIZES",
    "AppContext",
    "AppModel",
    "NotepadApp",
    "ExplorerApp",
    "CompilerApp",
    "WebBrowserApp",
    "MailApp",
    "WinlogonApp",
    "ServicesApp",
    "JavaToolApp",
    "BigBufferMailerApp",
    "ScientificApp",
    "DbAdminApp",
    "FrontPageApp",
    "InstallerApp",
    "APP_REGISTRY",
    "UsageCategory",
    "CATEGORY_PROFILES",
    "build_machine",
    "StudyConfig",
    "StudyError",
    "StudyResult",
    "StudyTelemetry",
    "run_study",
]
