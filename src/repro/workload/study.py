"""Study orchestration: the trace collection run.

``run_study`` builds a fleet of machines across the paper's five usage
categories (plus a network file server holding each user's home share),
drives heavy-tailed application sessions on every machine, takes start and
end snapshots, and returns the collectors — the equivalent of the paper's
4-week, 45-machine data collection, scaled down in duration.

The per-machine simulation is factored into :func:`simulate_machine`, the
unit of fan-out for the parallel engine (:mod:`repro.workload.parallel`):
every random stream a machine consumes derives from ``config.seed`` and
the machine index alone, so a machine produces identical traces whether it
runs inline or in a worker process.  :func:`merge_artifacts` is the
order-stable merge both paths share — results are assembled in machine
index order, never completion order, which keeps a study's output
byte-identical across worker counts.

:class:`StudyTelemetry` is the run's progress layer: structured
per-machine (and, for day-scale runs, per-simulated-day) progress lines,
plus wall-clock self-profiling of the simulate → warehouse-build →
analysis pipeline.  Wall-clock figures never enter the study's results or
``perf.json`` — those stay fully deterministic — they only feed the
progress stream and the CI ``BENCH_perf.json`` baseline.
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional, Sequence, TextIO

import numpy as np

from repro.common.clock import TICKS_PER_SECOND, ticks_from_seconds
from repro.nt.flight.log import MetricsSection
from repro.nt.fs.disk import SCSI_ULTRA2_DISK
from repro.nt.fs.volume import Volume
from repro.nt.tracing.collector import TraceCollector
from repro.stats.distributions import OnOffProcess, Pareto
from repro.workload.apps import AppContext, AppModel, ExplorerApp, ServicesApp, WinlogonApp
from repro.workload.content import build_user_share
from repro.workload.users import BuiltMachine, build_machine

# The paper's rough machine mix across the categories of §2.
DEFAULT_CATEGORY_MIX: tuple[tuple[str, float], ...] = (
    ("walkup", 0.25),
    ("pool", 0.25),
    ("personal", 0.30),
    ("administrative", 0.10),
    ("scientific", 0.10),
)


class StudyError(RuntimeError):
    """A study failed to run to completion (e.g. a parallel worker died)."""


@dataclass
class StudyConfig:
    """Parameters of one trace collection run."""

    n_machines: int = 6
    duration_seconds: float = 240.0
    seed: int = 1
    content_scale: float = 0.2
    category_mix: tuple[tuple[str, float], ...] = DEFAULT_CATEGORY_MIX
    with_network_shares: bool = True
    # Seconds of post-horizon drain so lazy closes land in the trace.
    drain_seconds: float = 6.0
    # Optional periodic snapshots between the start and end walks (the
    # paper's daily 4 a.m. schedule, scaled to the study duration).
    snapshot_interval_seconds: Optional[float] = None
    # Parallel execution: None runs machines serially in-process; an int
    # fans the machines out over that many worker processes (0 = one per
    # CPU core).  Results are byte-identical either way — workers decide
    # only *where* a machine simulates, never *what* it produces.
    workers: Optional[int] = None
    # Causal span tracing (repro.nt.tracing.spans / CLI --spans).  Off by
    # default: archives stay byte-identical to pre-span studies.
    spans_enabled: bool = False
    # Runtime Driver-Verifier mode (repro.nt.io.verifier / CLI
    # --verifier): protocol assertions on every dispatched packet.
    # Archives stay byte-identical with it on or off.
    verifier_enabled: bool = False
    # Flight recorder (repro.nt.flight / CLI --metrics): sample every
    # perf series into fixed simulated-time interval buckets for the
    # metrics.ntmetrics sidecar.  0.0 disables; archives stay
    # byte-identical with it on or off.
    metrics_interval_seconds: float = 0.0
    # Host-side hot-path self-profiler (repro.nt.flight.profiler / CLI
    # --profile).  Wall-clock bins ride telemetry only — they never
    # enter archives or perf.json.
    profile_enabled: bool = False
    # Batched hot-path dispatch (repro.nt.tracing.fastbuf / CLI
    # --no-batched-dispatch to opt out): precomputed handler tables,
    # columnar record staging, and declined-FastIO IRP reuse.  Archives,
    # perf.json, metrics, and span logs stay byte-identical on or off
    # (proven by tests/test_batched_differential.py).
    batched_dispatch: bool = True


@dataclass
class StudyResult:
    """Everything a study produced, ready for the analysis warehouse."""

    collectors: list[TraceCollector]
    machine_categories: dict[str, str]
    duration_ticks: int
    counters: dict[str, dict[str, int]] = field(default_factory=dict)
    # Per-machine PerfRegistry snapshots (see repro.nt.perf).
    perf: dict[str, dict] = field(default_factory=dict)
    # Per-machine flight-recorder sections (repro.nt.flight), in machine
    # order; empty unless the study ran with metrics_interval_seconds.
    metrics: list[MetricsSection] = field(default_factory=list)
    # Per-machine hot-path profiler bins (host wall clock — telemetry
    # only, never part of archives or perf.json).
    profiles: dict[str, dict] = field(default_factory=dict)

    @property
    def total_records(self) -> int:
        return sum(len(c) for c in self.collectors)

    def perf_aggregate(self) -> dict:
        """Fleet-wide perf snapshot (all machines merged)."""
        from repro.nt.perf import merge_snapshots
        return merge_snapshots(self.perf.values())


class StudyTelemetry:
    """Progress lines and wall-clock phase profiling for a study run.

    ``emit`` prints one structured ``key=value`` line per event to
    ``stream`` (stderr by default) when ``verbose`` — the operational view
    the paper's collection servers gave their operators.  ``phase`` times
    a pipeline stage (simulate, warehouse, analysis) in wall-clock
    seconds; phases are always recorded even when line printing is off,
    so benchmarks can self-profile silently.

    Thread-safe: during parallel runs worker events are forwarded by the
    engine's queue-drain thread while the main thread may emit too, so
    each line is rendered and written whole under a lock — lines never
    interleave mid-line.
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 verbose: bool = True) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.verbose = verbose
        self.phase_seconds: dict[str, float] = {}
        self.events: list[dict] = []
        self._lock = threading.Lock()

    def emit(self, event: str, **fields) -> None:
        """Record (and optionally print) one structured progress event."""
        record = {"event": event, **fields}
        with self._lock:
            self.events.append(record)
            if self.verbose:
                rendered = " ".join(
                    f"{key}={self._render(value)}"
                    for key, value in record.items())
                self.stream.write(f"[telemetry] {rendered}\n")
                self.stream.flush()

    def emit_record(self, record: Mapping) -> None:
        """Re-emit an event dict produced elsewhere (a worker process)."""
        fields = dict(record)
        self.emit(fields.pop("event"), **fields)

    @staticmethod
    def _render(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a pipeline stage; cumulative across repeated entries."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.phase_seconds[name] = \
                self.phase_seconds.get(name, 0.0) + elapsed
            self.emit("phase-done", phase=name, wall_seconds=elapsed)

    def bench_payload(self) -> dict:
        """Wall-clock phase timings, for the CI ``BENCH_perf.json``."""
        return {"phases": {name: round(seconds, 6)
                           for name, seconds in
                           sorted(self.phase_seconds.items())}}


def _apportion(weights: Sequence[float], total: int) -> list[int]:
    """Largest-remainder apportionment of ``total`` units over ``weights``.

    Every weight's floor share is granted first; the units lost to
    flooring go to the largest fractional remainders.  Guarantees the
    counts always sum to ``total`` and each count is within one of its
    exact share, so every category whose exact share reaches 1 is
    represented (naive rounding drops the 10% categories entirely on
    small fleets).
    """
    w = np.asarray(list(weights), dtype=float)
    w = w / w.sum()
    exact = w * total
    counts = np.floor(exact).astype(int)
    remainders = exact - counts
    short = total - int(counts.sum())
    # Tie-break equal remainders by weight, not position: the granted
    # count multiset is then invariant under permuting the categories.
    # (Weights that tie have identical exact shares, so either order
    # yields the same multiset.)
    order = np.lexsort((-w, -remainders))
    for idx in order[:short]:
        counts[idx] += 1
    return [int(c) for c in counts]


def _assign_categories(config: StudyConfig, rng=None) -> list[str]:
    """Machine categories for a study, in stable category-mix order.

    Purely a function of the config (``rng`` is accepted for backward
    compatibility and unused), which is what lets the serial and parallel
    engines agree on machine identities without sharing any state.
    """
    assigned: list[str] = []
    counts = _apportion([w for _n, w in config.category_mix],
                        config.n_machines)
    for (name, _w), count in zip(config.category_mix, counts):
        assigned.extend([name] * count)
    return assigned


def machine_name_for(index: int, category_name: str) -> str:
    """The stable identity of machine ``index`` in a study."""
    return f"m{index:02d}-{category_name}"


class _MachineWorkload:
    """Schedules and pumps application sessions on one machine."""

    def __init__(self, built: BuiltMachine, horizon: int,
                 rng: np.random.Generator) -> None:
        self.built = built
        self.horizon = horizon
        self.rng = rng
        self.live_apps: list[AppModel] = []

    def install(self) -> None:
        machine = self.built.machine
        # Logon at the very start of the session.
        machine.schedule(machine.clock.now + TICKS_PER_SECOND // 10,
                         lambda: self._launch(WinlogonApp))
        # The resident processes.
        machine.schedule(machine.clock.now + TICKS_PER_SECOND // 5,
                         lambda: self._launch(ServicesApp))
        machine.schedule(machine.clock.now + TICKS_PER_SECOND // 3,
                         lambda: self._launch(ExplorerApp))
        # Heavy-tailed session launches over the horizon, gated by a
        # user-level ON/OFF process: users work in bursts and walk away
        # (the §7 mechanism for self-similar traffic at coarse scales).
        category = self.built.category
        interarrival = Pareto(alpha=1.2, xm=category.session_interarrival_xm)
        horizon_seconds = self.horizon / float(ticks_from_seconds(1.0))
        user_activity = OnOffProcess(
            on_duration=Pareto(alpha=1.4,
                               xm=4 * category.session_interarrival_xm),
            off_duration=Pareto(alpha=1.4,
                                xm=2 * category.session_interarrival_xm))
        classes = [cls for cls, _w in category.app_mix]
        weights = np.array([w for _c, w in category.app_mix], dtype=float)
        weights /= weights.sum()
        for on_start, on_end in user_activity.periods(self.rng,
                                                      horizon_seconds,
                                                      start=1.0):
            t = on_start
            while True:
                t += float(interarrival.sample(self.rng))
                if t >= on_end:
                    break
                when = ticks_from_seconds(t)
                if when >= self.horizon:
                    break
                cls = classes[int(self.rng.choice(len(classes), p=weights))]
                machine.schedule(when, lambda c=cls: self._launch(c))

    def _launch(self, cls: type[AppModel]) -> None:
        built = self.built
        machine = built.machine
        process = machine.create_process(cls.name, cls.interactive)
        ctx = AppContext(
            machine=machine, process=process, catalog=built.catalog,
            rng=machine.rng, drive="C:",
            remote_prefix=built.remote_prefix,
            remote_catalog=built.remote_catalog)
        app = cls(ctx)
        app.on_start()
        self.live_apps.append(app)
        self._pump(app)

    def _pump(self, app: AppModel) -> None:
        next_wake = app.step()
        if next_wake is None:
            app.on_exit()
            if app in self.live_apps:
                self.live_apps.remove(app)
            return
        self.built.machine.schedule(next_wake, lambda: self._pump(app))

    def shutdown(self) -> None:
        """End of the run: exit live applications, then log the user off.

        Logoff migrates changed profile files back to the user's share
        ("at the end of each session the changes to the profiles are
        migrated back to the central server", §5).
        """
        for app in list(self.live_apps):
            app.on_exit()
        self.live_apps.clear()
        self._logoff_profile_upload()

    def _logoff_profile_upload(self) -> None:
        built = self.built
        if not built.remote_prefix or not built.catalog.profile_dir:
            return
        machine = built.machine
        process = machine.create_process("winlogon.exe")
        w = machine.win32
        volume = machine.drives.get("C")
        if volume is None:
            return
        profile = volume.resolve(built.catalog.profile_dir)
        if profile is None:
            return
        # Upload a sample of recently-changed profile files.
        candidates = [n for n in volume.walk()
                      if not n.is_directory
                      and built.catalog.profile_dir.lower()
                      in n.full_path().lower()]
        candidates.sort(key=lambda n: -n.last_write_time)
        w.create_directory(process,
                           built.remote_prefix
                           + f"\\{built.username}\\profile")
        for node in candidates[:int(self.rng.integers(5, 20))]:
            remote = (built.remote_prefix
                      + f"\\{built.username}\\profile"
                      + f"\\up{node.node_id}.dat")
            w.copy_file(process, "C:" + node.full_path(), remote,
                        chunk=16384)
        for handle in list(process.handles):
            w.close_handle(process, handle)
        process.alive = False


_SIM_DAY_TICKS = 86_400 * TICKS_PER_SECOND


def _install_day_marks(machine, horizon: int,
                       telemetry: StudyTelemetry) -> None:
    """Emit a per-simulated-day progress line for day-scale machines."""
    when, day = _SIM_DAY_TICKS, 1
    while when < horizon:
        def mark(day=day, machine=machine):
            telemetry.emit(
                "sim-day", machine=machine.name, day=day,
                records=sum(f.buffer.records_seen
                            for f in machine.trace_filters))
        machine.schedule(when, mark)
        when += _SIM_DAY_TICKS
        day += 1


@dataclass
class MachineArtifact:
    """One machine's complete simulation output, ready to merge."""

    index: int
    name: str
    category: str
    collector: TraceCollector
    counters: dict[str, int]
    perf: dict
    # Flight-recorder section (None unless the study enabled --metrics).
    metrics: Optional[MetricsSection] = None
    # Hot-path profiler bins (empty unless the study enabled --profile).
    profile: dict = field(default_factory=dict)


def simulate_machine(config: StudyConfig, index: int, category_name: str,
                     n_total: int,
                     telemetry: Optional[StudyTelemetry] = None
                     ) -> MachineArtifact:
    """Simulate one machine of a study — the unit of parallel fan-out.

    Fully self-contained: the machine's seed derives from ``config.seed``
    and ``index`` alone (``seed * 10_007 + index``), so the same machine
    produces the same trace whether it runs inline in the serial loop or
    in a worker process of :mod:`repro.workload.parallel`.
    """
    horizon = ticks_from_seconds(config.duration_seconds)
    name = machine_name_for(index, category_name)
    seed = config.seed * 10_007 + index
    built = build_machine(name, category_name, seed,
                          content_scale=config.content_scale,
                          spans_enabled=config.spans_enabled,
                          verifier_enabled=config.verifier_enabled,
                          metrics_interval_seconds=(
                              config.metrics_interval_seconds),
                          profile_enabled=config.profile_enabled,
                          batched_dispatch=config.batched_dispatch)
    machine = built.machine
    if config.with_network_shares:
        share = Volume(label=f"srv-{built.username}",
                       capacity_bytes=1024**3,
                       disk=SCSI_ULTRA2_DISK)
        built.remote_catalog = build_user_share(
            share, machine.rng, username=built.username,
            scale=config.content_scale)
        built.remote_prefix = rf"\\fileserv\{built.username}"
        machine.mount_remote(built.remote_prefix, share)
        # Home-share paths in the remote catalog are share-relative.
    machine.take_snapshots()
    if config.snapshot_interval_seconds:
        interval = ticks_from_seconds(config.snapshot_interval_seconds)
        when = interval
        while when < horizon:
            machine.schedule(when, machine.take_snapshots)
            when += interval
    workload = _MachineWorkload(built, horizon, machine.rng)
    workload.install()
    if telemetry is not None:
        _install_day_marks(machine, horizon, telemetry)
    wall_started = time.perf_counter()
    machine.run_until(horizon)
    workload.shutdown()
    machine.finish_tracing(
        drain_ticks=ticks_from_seconds(config.drain_seconds))
    machine.take_snapshots()
    if telemetry is not None:
        telemetry.emit(
            "machine-done", machine=name, category=category_name,
            index=index, of=n_total,
            records=len(machine.collector),
            sim_seconds=config.duration_seconds,
            wall_seconds=time.perf_counter() - wall_started)
    return MachineArtifact(
        index=index, name=name, category=category_name,
        collector=machine.collector,
        counters=dict(machine.counters),
        perf=machine.perf.snapshot(),
        metrics=(machine.flight.section()
                 if machine.flight is not None else None),
        profile=(machine.profiler.snapshot()
                 if machine.profiler.enabled else {}))


def merge_artifacts(artifacts: Sequence[MachineArtifact],
                    duration_ticks: int,
                    telemetry: Optional[StudyTelemetry] = None
                    ) -> StudyResult:
    """Order-stable merge of per-machine artifacts into a study result.

    Artifacts are assembled in machine *index* order regardless of the
    order they arrive in, so a parallel run's ``StudyResult`` (and its
    ``perf.json``) is byte-identical to the serial run's.
    """
    ordered = sorted(artifacts, key=lambda a: a.index)
    collectors = [a.collector for a in ordered]
    if telemetry is not None:
        telemetry.emit("study-done", machines=len(collectors),
                       records=sum(len(c) for c in collectors))
    return StudyResult(
        collectors=collectors,
        machine_categories={a.name: a.category for a in ordered},
        duration_ticks=duration_ticks,
        counters={a.name: dict(a.counters) for a in ordered},
        perf={a.name: a.perf for a in ordered},
        metrics=[a.metrics for a in ordered if a.metrics is not None],
        profiles={a.name: a.profile for a in ordered if a.profile})


def run_study(config: StudyConfig,
              telemetry: Optional[StudyTelemetry] = None) -> StudyResult:
    """Run a full trace collection study and return its results.

    With ``config.workers`` set, the per-machine loop fans out across a
    process pool (see :mod:`repro.workload.parallel`); otherwise machines
    simulate serially in-process.  Both paths produce identical results.
    """
    if config.workers is not None:
        from repro.workload.parallel import run_study_parallel
        return run_study_parallel(config, telemetry)
    categories = _assign_categories(config)
    artifacts = [
        simulate_machine(config, index, category_name, len(categories),
                         telemetry)
        for index, category_name in enumerate(categories)]
    return merge_artifacts(artifacts,
                           ticks_from_seconds(config.duration_seconds),
                           telemetry)
